#![warn(missing_docs)]

//! # ThreadFuser observability
//!
//! A lightweight span / counter / histogram layer threaded through the
//! whole pipeline. Every component reports typed [`PhaseEvent`]s to a
//! pluggable [`MetricsSink`]; the [`Obs`] handle is the cheap, clonable
//! carrier that the configs pass around.
//!
//! Design constraints:
//!
//! * **Zero cost when unused.** The default [`Obs::none`] holds no sink;
//!   every emission site is a single `Option` check, and spans become
//!   no-ops that never read the clock.
//! * **Coarse-grained events.** Components emit per *phase* and per
//!   *warp*, never per instruction, so even an attached sink stays out of
//!   the analyzer's hot loop.
//! * **Thread-friendly.** Sinks are `Send + Sync` and record through
//!   `&self`; the parallel analyzer clones one [`Obs`] across workers.
//!   Events from concurrent warps may interleave — run with
//!   `parallelism = 1` when event order matters.
//!
//! ```
//! use threadfuser_obs::{InMemorySink, Obs, Phase};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(InMemorySink::new());
//! let obs = Obs::with_sink(sink.clone());
//! {
//!     let _span = obs.span(Phase::Trace);
//!     obs.counter(Phase::Trace, "insts", 42);
//! }
//! assert_eq!(sink.counter_total("insts"), 42);
//! assert_eq!(sink.span_count(Phase::Trace), 1);
//! ```

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Pipeline stage an event belongs to.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Compiler optimization of the input program.
    Optimize,
    /// Once-per-program predecode of TFIR into the flat execution form
    /// (`threadfuser_machine::ExecProgram`) the interpreters run from.
    /// Carries `predecoded_insts` / `predecoded_blocks` counters.
    Predecode,
    /// Native MIMD execution + per-thread trace capture. Carries the
    /// executed/skipped instruction aggregates plus `trace_bytes` (columnar
    /// storage footprint) and a `trace_insts_per_sec` histogram.
    Trace,
    /// Trace-file ingestion (binary decode + structural validation).
    /// Carries the `decode_rejects` (corrupt threads or files detected)
    /// and `quarantined_threads` (threads skipped under
    /// `ValidationPolicy::SkipBadThreads`) counters.
    Decode,
    /// Shared analysis-index construction (DCFG build + IPDOM solving +
    /// per-thread cursor metadata); wraps [`Phase::DcfgBuild`] and
    /// [`Phase::Ipdom`]. Carries the `index_misses` / `index_hits`
    /// counters of the capture-level cache.
    IndexBuild,
    /// Dynamic CFG construction from the traces.
    DcfgBuild,
    /// IPDOM solving over the dynamic CFGs.
    Ipdom,
    /// Lock-step SIMT-stack emulation (one span per warp).
    WarpEmulate,
    /// Warp-trace generation (CISC→RISC decomposition + coalescing).
    Coalesce,
    /// Cycle-level SIMT device simulation.
    SimtSim,
    /// Multicore CPU baseline simulation.
    CpuSim,
    /// Warp-native lock-step ground-truth measurement.
    Lockstep,
    /// Analysis-as-a-service request handling (`threadfuser-serve`).
    /// Carries the capture-cache counters (`capture_hits` /
    /// `capture_misses` / `capture_evictions`), the job counters
    /// (`jobs_done` / `jobs_failed` / `jobs_rejected`), and one span per
    /// served job.
    Serve,
}

impl Phase {
    /// Stable lowercase name (used in JSON-lines output).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Optimize => "optimize",
            Phase::Predecode => "predecode",
            Phase::Trace => "trace",
            Phase::Decode => "decode",
            Phase::IndexBuild => "index-build",
            Phase::DcfgBuild => "dcfg-build",
            Phase::Ipdom => "ipdom",
            Phase::WarpEmulate => "warp-emulate",
            Phase::Coalesce => "coalesce",
            Phase::SimtSim => "simt-sim",
            Phase::CpuSim => "cpu-sim",
            Phase::Lockstep => "lockstep",
            Phase::Serve => "serve",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed observability event.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseEvent {
    /// A phase (or one warp of the emulation phase) began.
    SpanStart {
        /// The phase.
        phase: Phase,
    },
    /// A phase finished after `nanos` of wall time.
    SpanEnd {
        /// The phase.
        phase: Phase,
        /// Wall time in nanoseconds.
        nanos: u64,
    },
    /// A monotonic count (events, instructions, transactions, …).
    Counter {
        /// Phase the count belongs to.
        phase: Phase,
        /// Counter name (stable identifier).
        name: &'static str,
        /// Amount to add.
        value: u64,
    },
    /// One observation of a distribution (per-warp issues, per-core
    /// cycles, …).
    Histogram {
        /// Phase the observation belongs to.
        phase: Phase,
        /// Histogram name (stable identifier).
        name: &'static str,
        /// Observed value.
        value: f64,
    },
}

/// Receiver of [`PhaseEvent`]s. Implementations must be cheap: the
/// pipeline calls `record` from its emission sites directly.
pub trait MetricsSink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &PhaseEvent);

    /// Flushes buffered output, if any. Default: no-op.
    fn flush(&self) {}
}

/// Discards every event (the zero-cost default when an explicit sink
/// object is wanted; [`Obs::none`] avoids even the virtual call).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl MetricsSink for NullSink {
    fn record(&self, _event: &PhaseEvent) {}
}

/// Buffers every event in memory; the sink the test-suite and the bench
/// harness introspect.
#[derive(Debug, Default)]
pub struct InMemorySink {
    events: Mutex<Vec<PhaseEvent>>,
}

impl InMemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<PhaseEvent> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Sum of every [`PhaseEvent::Counter`] named `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .lock()
            .expect("sink poisoned")
            .iter()
            .filter_map(|e| match e {
                PhaseEvent::Counter { name: n, value, .. } if *n == name => Some(*value),
                _ => None,
            })
            .sum()
    }

    /// Number of completed spans of `phase`.
    pub fn span_count(&self, phase: Phase) -> usize {
        self.events
            .lock()
            .expect("sink poisoned")
            .iter()
            .filter(|e| matches!(e, PhaseEvent::SpanEnd { phase: p, .. } if *p == phase))
            .count()
    }

    /// Total wall nanoseconds across completed spans of `phase`.
    pub fn span_nanos(&self, phase: Phase) -> u64 {
        self.events
            .lock()
            .expect("sink poisoned")
            .iter()
            .filter_map(|e| match e {
                PhaseEvent::SpanEnd { phase: p, nanos } if *p == phase => Some(*nanos),
                _ => None,
            })
            .sum()
    }

    /// `(count, sum, min, max)` over [`PhaseEvent::Histogram`]
    /// observations named `name`, or `None` when none were recorded.
    pub fn histogram_summary(&self, name: &str) -> Option<(u64, f64, f64, f64)> {
        let events = self.events.lock().expect("sink poisoned");
        let mut it = events.iter().filter_map(|e| match e {
            PhaseEvent::Histogram { name: n, value, .. } if *n == name => Some(*value),
            _ => None,
        });
        let first = it.next()?;
        let (mut count, mut sum, mut min, mut max) = (1u64, first, first, first);
        for v in it {
            count += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        Some((count, sum, min, max))
    }

    /// [`Self::counter_total`] restricted to events of `phase` — the
    /// disambiguator for names like `workers` that several phases emit.
    pub fn counter_total_for(&self, phase: Phase, name: &str) -> u64 {
        self.events
            .lock()
            .expect("sink poisoned")
            .iter()
            .filter_map(|e| match e {
                PhaseEvent::Counter { phase: p, name: n, value } if *p == phase && *n == name => {
                    Some(*value)
                }
                _ => None,
            })
            .sum()
    }

    /// Largest single [`PhaseEvent::Counter`] value named `name` within
    /// `phase`. Counters sum across emissions, which is wrong for
    /// gauge-like readings such as `workers` when a phase runs more than
    /// once in an observed window; the max recovers the reading.
    pub fn counter_max_for(&self, phase: Phase, name: &str) -> u64 {
        self.events
            .lock()
            .expect("sink poisoned")
            .iter()
            .filter_map(|e| match e {
                PhaseEvent::Counter { phase: p, name: n, value } if *p == phase && *n == name => {
                    Some(*value)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// [`Self::histogram_summary`] restricted to events of `phase` — the
    /// disambiguator for names like `core_cycles` that both simulator
    /// phases emit.
    pub fn histogram_summary_for(&self, phase: Phase, name: &str) -> Option<(u64, f64, f64, f64)> {
        let events = self.events.lock().expect("sink poisoned");
        let mut it = events.iter().filter_map(|e| match e {
            PhaseEvent::Histogram { phase: p, name: n, value } if *p == phase && *n == name => {
                Some(*value)
            }
            _ => None,
        });
        let first = it.next()?;
        let (mut count, mut sum, mut min, mut max) = (1u64, first, first, first);
        for v in it {
            count += 1;
            sum += v;
            min = min.min(v);
            max = max.max(v);
        }
        Some((count, sum, min, max))
    }

    /// Drops all buffered events.
    pub fn clear(&self) {
        self.events.lock().expect("sink poisoned").clear();
    }
}

impl MetricsSink for InMemorySink {
    fn record(&self, event: &PhaseEvent) {
        self.events.lock().expect("sink poisoned").push(event.clone());
    }
}

/// Options for [`JsonLinesSink`].
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonLinesConfig {
    /// Flush the underlying writer after every event (crash-safe but
    /// slower). Default `false`: flushed on [`MetricsSink::flush`]/drop.
    pub flush_each_event: bool,
}

impl JsonLinesConfig {
    /// Sets per-event flushing.
    pub fn flush_each_event(mut self, on: bool) -> Self {
        self.flush_each_event = on;
        self
    }
}

/// Streams events as JSON lines (one object per event) to a file — the
/// export format downstream dashboards consume.
pub struct JsonLinesSink {
    writer: Mutex<BufWriter<File>>,
    config: JsonLinesConfig,
}

impl JsonLinesSink {
    /// Creates (truncating) `path` with default options.
    ///
    /// # Errors
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::create_with(path, JsonLinesConfig::default())
    }

    /// Creates (truncating) `path` with explicit options.
    ///
    /// # Errors
    /// Propagates file-creation failures.
    pub fn create_with(path: impl AsRef<Path>, config: JsonLinesConfig) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonLinesSink { writer: Mutex::new(BufWriter::new(file)), config })
    }
}

impl fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").field("config", &self.config).finish_non_exhaustive()
    }
}

fn json_escape(s: &str) -> String {
    // Counter names are static identifiers, but stay safe anyway.
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSink for JsonLinesSink {
    fn record(&self, event: &PhaseEvent) {
        let line = match event {
            PhaseEvent::SpanStart { phase } => {
                format!("{{\"event\":\"span_start\",\"phase\":\"{}\"}}", phase.name())
            }
            PhaseEvent::SpanEnd { phase, nanos } => format!(
                "{{\"event\":\"span_end\",\"phase\":\"{}\",\"nanos\":{nanos}}}",
                phase.name()
            ),
            PhaseEvent::Counter { phase, name, value } => format!(
                "{{\"event\":\"counter\",\"phase\":\"{}\",\"name\":\"{}\",\"value\":{value}}}",
                phase.name(),
                json_escape(name)
            ),
            PhaseEvent::Histogram { phase, name, value } => format!(
                "{{\"event\":\"histogram\",\"phase\":\"{}\",\"name\":\"{}\",\"value\":{value}}}",
                phase.name(),
                json_escape(name)
            ),
        };
        let mut w = self.writer.lock().expect("sink poisoned");
        let _ = writeln!(w, "{line}");
        if self.config.flush_each_event {
            let _ = w.flush();
        }
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("sink poisoned").flush();
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        MetricsSink::flush(self);
    }
}

/// The observability handle every pipeline config carries. Cloning is an
/// `Arc` bump; the default carries no sink and makes every emission a
/// branch on `None`.
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn MetricsSink>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Obs({})", if self.sink.is_some() { "attached" } else { "none" })
    }
}

impl Obs {
    /// No sink: every emission is a no-op.
    pub fn none() -> Self {
        Obs { sink: None }
    }

    /// Routes events into `sink`.
    pub fn with_sink(sink: Arc<dyn MetricsSink>) -> Self {
        Obs { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a span of `phase`; the returned guard emits
    /// [`PhaseEvent::SpanEnd`] with the elapsed wall time when dropped.
    pub fn span(&self, phase: Phase) -> Span {
        match &self.sink {
            Some(s) => {
                s.record(&PhaseEvent::SpanStart { phase });
                Span { inner: Some((Arc::clone(s), phase, Instant::now())) }
            }
            None => Span { inner: None },
        }
    }

    /// Adds `value` to counter `name` of `phase`.
    pub fn counter(&self, phase: Phase, name: &'static str, value: u64) {
        if let Some(s) = &self.sink {
            s.record(&PhaseEvent::Counter { phase, name, value });
        }
    }

    /// Records one observation of histogram `name` of `phase`.
    pub fn histogram(&self, phase: Phase, name: &'static str, value: f64) {
        if let Some(s) = &self.sink {
            s.record(&PhaseEvent::Histogram { phase, name, value });
        }
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&self) {
        if let Some(s) = &self.sink {
            s.flush();
        }
    }
}

/// Span guard returned by [`Obs::span`]; emits the closing event (with
/// wall-clock duration) on drop.
#[must_use = "dropping the span immediately records a zero-length phase"]
pub struct Span {
    inner: Option<(Arc<dyn MetricsSink>, Phase, Instant)>,
}

impl Span {
    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((sink, phase, start)) = self.inner.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.record(&PhaseEvent::SpanEnd { phase, nanos });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_obs_is_inert() {
        let obs = Obs::none();
        assert!(!obs.enabled());
        let span = obs.span(Phase::Trace);
        obs.counter(Phase::Trace, "x", 1);
        obs.histogram(Phase::Trace, "y", 1.0);
        span.finish();
        obs.flush();
    }

    #[test]
    fn in_memory_sink_orders_and_sums() {
        let sink = Arc::new(InMemorySink::new());
        let obs = Obs::with_sink(sink.clone());
        {
            let _s = obs.span(Phase::DcfgBuild);
            obs.counter(Phase::DcfgBuild, "edges", 3);
            obs.counter(Phase::DcfgBuild, "edges", 4);
        }
        let events = sink.events();
        assert!(matches!(events[0], PhaseEvent::SpanStart { phase: Phase::DcfgBuild }));
        assert!(matches!(events[3], PhaseEvent::SpanEnd { phase: Phase::DcfgBuild, .. }));
        assert_eq!(sink.counter_total("edges"), 7);
        assert_eq!(sink.span_count(Phase::DcfgBuild), 1);
    }

    #[test]
    fn histogram_summary_tracks_extremes() {
        let sink = InMemorySink::new();
        let obs = Obs::with_sink(Arc::new(NullSink)); // exercise NullSink too
        obs.counter(Phase::SimtSim, "ignored", 1);
        for v in [4.0, 1.0, 9.0] {
            sink.record(&PhaseEvent::Histogram { phase: Phase::SimtSim, name: "c", value: v });
        }
        let (count, sum, min, max) = sink.histogram_summary("c").unwrap();
        assert_eq!(count, 3);
        assert!((sum - 14.0).abs() < 1e-12);
        assert_eq!((min, max), (1.0, 9.0));
        assert!(sink.histogram_summary("absent").is_none());
    }

    #[test]
    fn phase_filtered_helpers_disambiguate_shared_names() {
        let sink = InMemorySink::new();
        sink.record(&PhaseEvent::Counter { phase: Phase::SimtSim, name: "workers", value: 4 });
        sink.record(&PhaseEvent::Counter { phase: Phase::CpuSim, name: "workers", value: 2 });
        sink.record(&PhaseEvent::Histogram {
            phase: Phase::SimtSim,
            name: "core_cycles",
            value: 10.0,
        });
        sink.record(&PhaseEvent::Histogram {
            phase: Phase::CpuSim,
            name: "core_cycles",
            value: 3.0,
        });
        assert_eq!(sink.counter_total("workers"), 6);
        assert_eq!(sink.counter_total_for(Phase::SimtSim, "workers"), 4);
        assert_eq!(sink.counter_total_for(Phase::CpuSim, "workers"), 2);
        let (count, sum, min, max) =
            sink.histogram_summary_for(Phase::SimtSim, "core_cycles").unwrap();
        assert_eq!((count, sum, min, max), (1, 10.0, 10.0, 10.0));
        assert!(sink.histogram_summary_for(Phase::Lockstep, "core_cycles").is_none());
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_event() {
        let path = std::env::temp_dir().join("tf_obs_test.jsonl");
        {
            let sink = JsonLinesSink::create_with(
                &path,
                JsonLinesConfig::default().flush_each_event(true),
            )
            .unwrap();
            sink.record(&PhaseEvent::SpanStart { phase: Phase::SimtSim });
            sink.record(&PhaseEvent::Counter { phase: Phase::SimtSim, name: "cycles", value: 8 });
            sink.record(&PhaseEvent::SpanEnd { phase: Phase::SimtSim, nanos: 12 });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"event\":\"span_start\",\"phase\":\"simt-sim\"}");
        assert!(lines[1].contains("\"name\":\"cycles\"") && lines[1].contains("\"value\":8"));
        assert!(lines[2].contains("\"nanos\":12"));
        let _ = std::fs::remove_file(&path);
    }
}
