#![warn(missing_docs)]

//! # ThreadFuser warp-trace generator
//!
//! Converts the analyzer's fused lock-step replay into **warp-level
//! instruction traces** consumable by the trace-driven SIMT simulator
//! (the Accel-Sim role in the paper, §III "Generating warp-based
//! instruction traces").
//!
//! Two paper-faithful transformations happen here:
//!
//! * **CISC → RISC decomposition**: a TFIR instruction with a memory
//!   operand is split into a `load` (or a `store`) micro-op plus the ALU
//!   micro-op, exactly like the paper's `add [mem]` → `load; add` example;
//! * **memory-space mapping**: stack-segment accesses become SIMT *local*
//!   space, everything else *global* space.
//!
//! Generation is parallel: each warp decomposes into its own private
//! sink while the underlying lock-step emulation fans warps across
//! `AnalyzerConfig::parallelism` workers, and the per-warp streams are
//! merged in warp order — the produced [`WarpTraceSet`] is bit-identical
//! at any worker count.
//!
//! ```
//! use threadfuser_ir::{ProgramBuilder, Operand};
//! use threadfuser_machine::MachineConfig;
//! use threadfuser_tracer::trace_program;
//! use threadfuser_analyzer::AnalyzerConfig;
//! use threadfuser_tracegen::generate_warp_traces;
//!
//! let mut pb = ProgramBuilder::new();
//! let out = pb.global("out", 8 * 64);
//! let k = pb.function("k", 1, |fb| {
//!     let tid = fb.arg(0);
//!     let dst = fb.global_ref(out, Operand::Reg(tid), 8);
//!     fb.store(dst, tid);
//!     fb.ret(None);
//! });
//! let program = pb.build().unwrap();
//! let (traces, _) = trace_program(&program, MachineConfig::new(k, 64)).unwrap();
//! let warp_traces = generate_warp_traces(&program, &traces, &AnalyzerConfig::new(32)).unwrap();
//! assert_eq!(warp_traces.warps().len(), 2);
//! ```

use serde::{Deserialize, Serialize};
use threadfuser_analyzer::{
    analyze_indexed_with_warp_sinks, AnalysisIndex, AnalyzeError, AnalyzerConfig, BlockStep,
    StepSink,
};
use threadfuser_ir::{Inst, Program, Terminator};
use threadfuser_machine::{segment_of, Segment};
use threadfuser_tracer::TraceSet;

/// Functional class of a warp micro-op (maps to a latency class in the
/// simulator, like Accel-Sim's virtual opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple integer ALU (add/sub/logic/lea/mov).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide/remainder.
    IntDiv,
    /// Memory load micro-op.
    Load,
    /// Memory store micro-op.
    Store,
    /// Control transfer (branch/jump/switch).
    Branch,
    /// Call/return overhead.
    CallRet,
    /// Synchronization (acquire/release/barrier).
    Sync,
    /// Heap-allocator call (alloc/free).
    Alloc,
}

/// SIMT memory space of a decomposed memory micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Per-thread local space (CPU stack segment).
    Local,
    /// Global space (CPU globals + heap).
    Global,
}

/// Memory payload of a [`WarpInst`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemOp {
    /// Space the access targets.
    pub space: MemSpace,
    /// Store (`true`) or load (`false`).
    pub is_store: bool,
    /// Per-active-lane `(address, size)` pairs.
    pub accesses: Vec<(u64, u32)>,
}

/// One warp-level instruction of the generated trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpInst {
    /// Synthetic PC: `func << 24 | block << 8 | micro-op slot`.
    pub pc: u64,
    /// Latency class.
    pub op: OpClass,
    /// Active-lane mask.
    pub mask: u64,
    /// Active-lane count.
    pub active: u32,
    /// Memory payload for `Load`/`Store` micro-ops.
    pub mem: Option<MemOp>,
}

/// The instruction trace of one warp.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpTrace {
    /// Warp index.
    pub warp: u32,
    /// Lock-step instruction stream.
    pub insts: Vec<WarpInst>,
}

/// A complete warp-trace capture.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpTraceSet {
    warp_size: u32,
    warps: Vec<WarpTrace>,
}

impl WarpTraceSet {
    /// Warp width the traces were generated for.
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// Per-warp traces.
    pub fn warps(&self) -> &[WarpTrace] {
        &self.warps
    }

    /// Total warp-level micro-ops.
    pub fn total_insts(&self) -> u64 {
        self.warps.iter().map(|w| w.insts.len() as u64).sum()
    }
}

/// Per-warp step sink: receives exactly one warp's lock-step blocks (in
/// emulation order) and decomposes them into that warp's micro-op stream.
/// One sink per warp is what lets `analyze_indexed_with_warp_sinks` fan
/// the emulation across workers while the merged trace stays bit-identical
/// to a sequential run.
struct WarpGen<'p> {
    program: &'p Program,
    insts: Vec<WarpInst>,
}

fn space_of(accesses: &[(u64, u32)]) -> MemSpace {
    // An instruction's lanes target one segment in practice; classify by
    // the first access (mixed-space instructions are split by hardware
    // anyway and are not produced by the TFIR builder).
    match accesses.first().map(|&(a, _)| segment_of(a)) {
        Some(Segment::Stack) => MemSpace::Local,
        _ => MemSpace::Global,
    }
}

impl StepSink for WarpGen<'_> {
    fn on_step(&mut self, step: &BlockStep<'_>) {
        let func = self.program.function(step.func);
        let block = func.block(step.block);
        let base_pc = ((step.func.0 as u64) << 24) | ((step.block.0 as u64) << 8);
        let mask = step.mask;
        let active = step.active;
        let out = &mut self.insts;
        let mut slot = 0u64;
        let push = |op: OpClass, mem: Option<MemOp>, out: &mut Vec<WarpInst>, slot: &mut u64| {
            out.push(WarpInst { pc: base_pc | *slot, op, mask, active, mem });
            *slot += 1;
        };

        for (i, inst) in block.insts.iter().enumerate() {
            let accesses = step.mem.get(i as u32);
            // CISC → RISC: a leading load micro-op for memory reads.
            if inst.mem_read().is_some() {
                let acc = accesses.map(<[_]>::to_vec).unwrap_or_default();
                let space = space_of(&acc);
                push(
                    OpClass::Load,
                    Some(MemOp { space, is_store: false, accesses: acc }),
                    out,
                    &mut slot,
                );
            }
            match inst {
                Inst::Alu { op, .. } => {
                    let class = match op {
                        threadfuser_ir::AluOp::Mul => OpClass::IntMul,
                        threadfuser_ir::AluOp::Div | threadfuser_ir::AluOp::Rem => OpClass::IntDiv,
                        _ => OpClass::IntAlu,
                    };
                    push(class, None, out, &mut slot);
                }
                Inst::Mov { src, .. } => {
                    // A pure load decomposes to just the Load micro-op.
                    if src.mem().is_none() {
                        push(OpClass::IntAlu, None, out, &mut slot);
                    }
                }
                Inst::Store { .. } => {
                    let acc = accesses.map(<[_]>::to_vec).unwrap_or_default();
                    let space = space_of(&acc);
                    push(
                        OpClass::Store,
                        Some(MemOp { space, is_store: true, accesses: acc }),
                        out,
                        &mut slot,
                    );
                }
                Inst::Lea { .. } => push(OpClass::IntAlu, None, out, &mut slot),
                Inst::Alloc { .. } | Inst::Free { .. } => {
                    push(OpClass::Alloc, None, out, &mut slot);
                }
                Inst::Io { .. } | Inst::Nop => push(OpClass::IntAlu, None, out, &mut slot),
            }
        }

        // Terminator.
        let term_idx = (block.insts.len()) as u32;
        if block.term.mem_read().is_some() {
            let acc = step.mem.get(term_idx).map(<[_]>::to_vec).unwrap_or_default();
            let space = space_of(&acc);
            push(
                OpClass::Load,
                Some(MemOp { space, is_store: false, accesses: acc }),
                out,
                &mut slot,
            );
        }
        let term_class = match &block.term {
            Terminator::Jmp(_) | Terminator::Br { .. } | Terminator::Switch { .. } => {
                OpClass::Branch
            }
            Terminator::Call { .. } | Terminator::Ret { .. } => OpClass::CallRet,
            Terminator::Acquire { .. }
            | Terminator::Release { .. }
            | Terminator::Barrier { .. } => OpClass::Sync,
        };
        push(term_class, None, out, &mut slot);
    }
}

/// Generates warp-based instruction traces by replaying the analyzer's
/// lock-step emulation (per-function DCFG + SIMT stack) and decomposing
/// each TFIR instruction into RISC micro-ops.
///
/// Builds a throwaway [`AnalysisIndex`] internally; callers sweeping
/// configurations over one capture should build the index once and use
/// [`generate_warp_traces_indexed`].
///
/// # Errors
/// Propagates [`AnalyzeError`] from the underlying emulation.
pub fn generate_warp_traces(
    program: &Program,
    traces: &TraceSet,
    config: &AnalyzerConfig,
) -> Result<WarpTraceSet, AnalyzeError> {
    let index = AnalysisIndex::build_observed(program, traces, &config.obs)?;
    generate_warp_traces_indexed(program, traces, &index, config)
}

/// [`generate_warp_traces`] against a prebuilt [`AnalysisIndex`] — the
/// warm path of a config sweep. The index must come from the same
/// `(program, traces)` pair.
///
/// # Errors
/// Propagates [`AnalyzeError`] from the underlying emulation.
pub fn generate_warp_traces_indexed(
    program: &Program,
    traces: &TraceSet,
    index: &AnalysisIndex,
    config: &AnalyzerConfig,
) -> Result<WarpTraceSet, AnalyzeError> {
    let span = config.obs.span(threadfuser_obs::Phase::Coalesce);
    // One private sink per warp: generation fans across the analyzer's
    // worker pool ([`AnalyzerConfig::parallelism`]) and the sinks come
    // back in warp order, so the concatenation below is bit-identical to
    // a sequential run at any worker count.
    let (_, sinks) = analyze_indexed_with_warp_sinks(program, traces, index, config, |_| {
        WarpGen { program, insts: Vec::new() }
    })?;
    let mut warps: Vec<WarpTrace> = sinks
        .into_iter()
        .enumerate()
        .map(|(w, g)| WarpTrace { warp: w as u32, insts: g.insts })
        .collect();
    // The pre-parallel generator grew its warp list lazily, so warps past
    // the last one that ever stepped were absent; keep that shape.
    while warps.last().is_some_and(|w| w.insts.is_empty()) {
        warps.pop();
    }
    let set = WarpTraceSet { warp_size: config.warp_size, warps };
    if config.obs.enabled() {
        let obs = &config.obs;
        obs.counter(threadfuser_obs::Phase::Coalesce, "warp_insts", set.total_insts());
        let mem_ops: u64 =
            set.warps.iter().flat_map(|w| &w.insts).filter(|i| i.mem.is_some()).count() as u64;
        obs.counter(threadfuser_obs::Phase::Coalesce, "mem_micro_ops", mem_ops);
    }
    span.finish();
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use threadfuser_ir::{AluOp, Cond, FuncId, Operand, ProgramBuilder};
    use threadfuser_machine::MachineConfig;
    use threadfuser_tracer::trace_program;

    fn gen(pb_k: (Program, FuncId), n: u32, w: u32) -> WarpTraceSet {
        let (p, k) = pb_k;
        let (traces, _) = trace_program(&p, MachineConfig::new(k, n)).unwrap();
        generate_warp_traces(&p, &traces, &AnalyzerConfig::new(w)).unwrap()
    }

    fn cisc_add_program() -> (Program, FuncId) {
        let mut pb = ProgramBuilder::new();
        let g = pb.global_i64("g", &[1, 2, 3, 4, 5, 6, 7, 8]);
        let out = pb.global("out", 8 * 8);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let m = fb.global_ref(g, Operand::Reg(tid), 8);
            // CISC add with memory operand.
            let v = fb.alu(AluOp::Add, 10i64, Operand::Mem(m));
            let dst = fb.global_ref(out, Operand::Reg(tid), 8);
            fb.store(dst, v);
            fb.ret(None);
        });
        (pb.build().unwrap(), k)
    }

    #[test]
    fn cisc_alu_with_mem_operand_decomposes_to_load_plus_alu() {
        let wt = gen(cisc_add_program(), 8, 8);
        let w = &wt.warps()[0];
        let classes: Vec<OpClass> = w.insts.iter().map(|i| i.op).collect();
        // load (from CISC add), add, store, ret
        assert_eq!(classes, vec![OpClass::Load, OpClass::IntAlu, OpClass::Store, OpClass::CallRet]);
    }

    #[test]
    fn stack_accesses_map_to_local_space() {
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let v = fb.var(8);
            fb.store_var(v, 1i64);
            let r = fb.load_var(v);
            fb.ret(Some(Operand::Reg(r)));
        });
        let p = pb.build().unwrap();
        let wt = gen((p, k), 8, 8);
        let mems: Vec<&MemOp> = wt.warps()[0].insts.iter().filter_map(|i| i.mem.as_ref()).collect();
        assert_eq!(mems.len(), 2);
        assert!(mems.iter().all(|m| m.space == MemSpace::Local));
        assert!(mems[0].is_store && !mems[1].is_store);
    }

    #[test]
    fn global_accesses_map_to_global_space() {
        let wt = gen(cisc_add_program(), 8, 8);
        let mems: Vec<&MemOp> = wt.warps()[0].insts.iter().filter_map(|i| i.mem.as_ref()).collect();
        assert!(mems.iter().all(|m| m.space == MemSpace::Global));
    }

    #[test]
    fn divergent_branch_yields_partial_masks() {
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let bit = fb.alu(AluOp::And, tid, 1i64);
            fb.if_then(Cond::Eq, bit, 0i64, |fb| fb.nop());
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let wt = gen((p, k), 8, 8);
        let masks: Vec<u32> = wt.warps()[0].insts.iter().map(|i| i.active).collect();
        assert!(masks.contains(&8), "full-mask instructions exist");
        assert!(masks.contains(&4), "half-mask (divergent) instructions exist");
    }

    #[test]
    fn mem_accesses_cover_all_active_lanes() {
        let wt = gen(cisc_add_program(), 8, 8);
        for w in wt.warps() {
            for i in &w.insts {
                if let Some(m) = &i.mem {
                    assert_eq!(m.accesses.len(), i.active as usize);
                }
            }
        }
    }

    #[test]
    fn warp_traces_round_trip_through_json() {
        let wt = gen(cisc_add_program(), 8, 4);
        let json = serde_json::to_string(&wt).unwrap();
        let back: WarpTraceSet = serde_json::from_str(&json).unwrap();
        assert_eq!(wt, back);
    }

    #[test]
    fn warp_count_matches_batching() {
        let wt = gen(cisc_add_program(), 8, 4);
        assert_eq!(wt.warps().len(), 2);
        assert_eq!(wt.warp_size(), 4);
        assert!(wt.total_insts() > 0);
    }
}
