#![warn(missing_docs)]

//! # ThreadFuser warp-trace generator
//!
//! Converts the analyzer's fused lock-step replay into **warp-level
//! instruction traces** consumable by the trace-driven SIMT simulator
//! (the Accel-Sim role in the paper, §III "Generating warp-based
//! instruction traces").
//!
//! Two paper-faithful transformations happen here:
//!
//! * **CISC → RISC decomposition**: a TFIR instruction with a memory
//!   operand is split into a `load` (or a `store`) micro-op plus the ALU
//!   micro-op, exactly like the paper's `add [mem]` → `load; add` example;
//! * **memory-space mapping**: stack-segment accesses become SIMT *local*
//!   space, everything else *global* space.
//!
//! Generation is parallel: each warp decomposes into its own private
//! sink while the underlying lock-step emulation fans warps across
//! `AnalyzerConfig::parallelism` workers, and the per-warp streams are
//! merged in warp order — the produced [`WarpTraceSet`] is bit-identical
//! at any worker count.
//!
//! ```
//! use threadfuser_ir::{ProgramBuilder, Operand};
//! use threadfuser_machine::MachineConfig;
//! use threadfuser_tracer::trace_program;
//! use threadfuser_analyzer::AnalyzerConfig;
//! use threadfuser_tracegen::generate_warp_traces;
//!
//! let mut pb = ProgramBuilder::new();
//! let out = pb.global("out", 8 * 64);
//! let k = pb.function("k", 1, |fb| {
//!     let tid = fb.arg(0);
//!     let dst = fb.global_ref(out, Operand::Reg(tid), 8);
//!     fb.store(dst, tid);
//!     fb.ret(None);
//! });
//! let program = pb.build().unwrap();
//! let (traces, _) = trace_program(&program, MachineConfig::new(k, 64)).unwrap();
//! let warp_traces = generate_warp_traces(&program, &traces, &AnalyzerConfig::new(32)).unwrap();
//! assert_eq!(warp_traces.warps().len(), 2);
//! ```

use serde::{Deserialize, Serialize};
use threadfuser_analyzer::{
    analyze_indexed_with_warp_sinks, AnalysisIndex, AnalysisReport, AnalyzeError, AnalyzerConfig,
    BlockStep, StepSink,
};
use threadfuser_ir::{BlockId, FuncId, Inst, Program, Terminator};
use threadfuser_machine::{segment_of, Segment};
use threadfuser_tracer::TraceSet;

/// Functional class of a warp micro-op (maps to a latency class in the
/// simulator, like Accel-Sim's virtual opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple integer ALU (add/sub/logic/lea/mov).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide/remainder.
    IntDiv,
    /// Memory load micro-op.
    Load,
    /// Memory store micro-op.
    Store,
    /// Control transfer (branch/jump/switch).
    Branch,
    /// Call/return overhead.
    CallRet,
    /// Synchronization (acquire/release/barrier).
    Sync,
    /// Heap-allocator call (alloc/free).
    Alloc,
}

/// SIMT memory space of a decomposed memory micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Per-thread local space (CPU stack segment).
    Local,
    /// Global space (CPU globals + heap).
    Global,
}

/// Memory payload of a [`WarpInst`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemOp {
    /// Space the access targets.
    pub space: MemSpace,
    /// Store (`true`) or load (`false`).
    pub is_store: bool,
    /// Per-active-lane `(address, size)` pairs.
    pub accesses: Vec<(u64, u32)>,
}

/// One warp-level instruction of the generated trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpInst {
    /// Synthetic PC: `func << 24 | block << 8 | micro-op slot`.
    pub pc: u64,
    /// Latency class.
    pub op: OpClass,
    /// Active-lane mask.
    pub mask: u64,
    /// Active-lane count.
    pub active: u32,
    /// Memory payload for `Load`/`Store` micro-ops.
    pub mem: Option<MemOp>,
}

/// The instruction trace of one warp.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpTrace {
    /// Warp index.
    pub warp: u32,
    /// Lock-step instruction stream.
    pub insts: Vec<WarpInst>,
}

/// A complete warp-trace capture.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpTraceSet {
    warp_size: u32,
    warps: Vec<WarpTrace>,
}

impl WarpTraceSet {
    /// Warp width the traces were generated for.
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// Per-warp traces.
    pub fn warps(&self) -> &[WarpTrace] {
        &self.warps
    }

    /// Total warp-level micro-ops.
    pub fn total_insts(&self) -> u64 {
        self.warps.iter().map(|w| w.insts.len() as u64).sum()
    }
}

/// One precomputed micro-op of a block's CISC → RISC decomposition.
#[derive(Debug, Clone, Copy)]
struct MicroOp {
    /// Latency class.
    op: OpClass,
    /// Whether the micro-op is a store (only meaningful with a payload).
    is_store: bool,
    /// Instruction index whose accesses become the memory payload, or
    /// [`NO_MEM`].
    mem_inst: u32,
}

const NO_MEM: u32 = u32::MAX;

/// Per-block micro-op decompositions for a whole program, in one CSR
/// arena: `micro[block_off[func_off[f] + b] .. block_off[.. + 1]]` is
/// block `(f, b)`'s recipe. The decomposition depends only on the static
/// instruction list, so it is computed once per generation and each
/// emulated step replays compact 8-byte records instead of re-matching
/// the full TFIR instruction enums.
struct BlockRecipes {
    micro: Vec<MicroOp>,
    func_off: Vec<u32>,
    block_off: Vec<u32>,
}

impl BlockRecipes {
    fn build(program: &Program) -> Self {
        let mut r = BlockRecipes {
            micro: Vec::new(),
            func_off: Vec::with_capacity(program.functions().len()),
            block_off: Vec::new(),
        };
        for f in program.functions() {
            r.func_off.push(r.block_off.len() as u32);
            for (_, block) in f.iter_blocks() {
                r.block_off.push(r.micro.len() as u32);
                for (i, inst) in block.insts.iter().enumerate() {
                    // A leading load micro-op for memory reads.
                    if inst.mem_read().is_some() {
                        r.micro.push(MicroOp {
                            op: OpClass::Load,
                            is_store: false,
                            mem_inst: i as u32,
                        });
                    }
                    let (op, mem_inst) = match inst {
                        Inst::Alu { op, .. } => {
                            let class = match op {
                                threadfuser_ir::AluOp::Mul => OpClass::IntMul,
                                threadfuser_ir::AluOp::Div | threadfuser_ir::AluOp::Rem => {
                                    OpClass::IntDiv
                                }
                                _ => OpClass::IntAlu,
                            };
                            (Some(class), NO_MEM)
                        }
                        // A pure load decomposes to just the Load micro-op.
                        Inst::Mov { src, .. } => {
                            (src.mem().is_none().then_some(OpClass::IntAlu), NO_MEM)
                        }
                        Inst::Store { .. } => (Some(OpClass::Store), i as u32),
                        Inst::Lea { .. } => (Some(OpClass::IntAlu), NO_MEM),
                        Inst::Alloc { .. } | Inst::Free { .. } => (Some(OpClass::Alloc), NO_MEM),
                        Inst::Io { .. } | Inst::Nop => (Some(OpClass::IntAlu), NO_MEM),
                    };
                    if let Some(op) = op {
                        let is_store = mem_inst != NO_MEM;
                        r.micro.push(MicroOp { op, is_store, mem_inst });
                    }
                }
                // Terminator (its accesses are recorded at index
                // `insts.len()`).
                if block.term.mem_read().is_some() {
                    r.micro.push(MicroOp {
                        op: OpClass::Load,
                        is_store: false,
                        mem_inst: block.insts.len() as u32,
                    });
                }
                let term_class = match &block.term {
                    Terminator::Jmp(_) | Terminator::Br { .. } | Terminator::Switch { .. } => {
                        OpClass::Branch
                    }
                    Terminator::Call { .. } | Terminator::Ret { .. } => OpClass::CallRet,
                    Terminator::Acquire { .. }
                    | Terminator::Release { .. }
                    | Terminator::Barrier { .. } => OpClass::Sync,
                };
                r.micro.push(MicroOp { op: term_class, is_store: false, mem_inst: NO_MEM });
            }
        }
        r.block_off.push(r.micro.len() as u32);
        r
    }

    #[inline]
    fn block(&self, func: threadfuser_ir::FuncId, block: threadfuser_ir::BlockId) -> &[MicroOp] {
        let b = self.func_off[func.0 as usize] as usize + block.0 as usize;
        &self.micro[self.block_off[b] as usize..self.block_off[b + 1] as usize]
    }
}

fn space_of(accesses: &[(u64, u32)]) -> MemSpace {
    // An instruction's lanes target one segment in practice; classify by
    // the first access (mixed-space instructions are split by hardware
    // anyway and are not produced by the TFIR builder).
    match accesses.first().map(|&(a, _)| segment_of(a)) {
        Some(Segment::Stack) => MemSpace::Local,
        _ => MemSpace::Global,
    }
}

/// One recorded lock-step block execution: the compact footprint a step
/// leaves during emulation (24 bytes + payload arenas), expanded into
/// micro-ops *after* the warp-emulate phase finishes.
#[derive(Debug, Clone, Copy)]
struct StepRec {
    func: u32,
    block: u32,
    active: u32,
    /// Start of this step's access groups in the warp's group arena
    /// (the next step's start is the end).
    grp_lo: u32,
    mask: u64,
}

/// One warp's recorded step stream plus its flat payload arenas.
#[derive(Debug, Clone, Default)]
struct WarpRec {
    steps: Vec<StepRec>,
    /// `(inst_idx, acc_lo)` per access group, in step-then-instruction
    /// order; `acc_lo` cursors into `accs` (next group's start is the
    /// end).
    groups: Vec<(u32, u32)>,
    /// Flat `(address, size)` payload arena.
    accs: Vec<(u64, u32)>,
}

/// A compact capture of one full lock-step emulation: everything needed
/// to materialize a [`WarpTraceSet`] without replaying the warps.
///
/// Recording is what the emulation-side sink does (a few arena appends
/// per step); the allocation-heavy micro-op expansion happens later in
/// [`expand_warp_recording`], outside the warp-emulate phase. The
/// recording is also reusable: one emulation can serve both the analysis
/// report and any number of trace expansions.
#[derive(Debug, Clone, Default)]
pub struct WarpRecording {
    warps: Vec<WarpRec>,
    warp_size: u32,
}

impl WarpRecording {
    /// Recorded warp count.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }

    /// Total recorded lock-step block executions.
    pub fn total_steps(&self) -> u64 {
        self.warps.iter().map(|w| w.steps.len() as u64).sum()
    }
}

/// Per-warp step sink: records exactly one warp's lock-step blocks (in
/// emulation order). One sink per warp is what lets
/// `analyze_indexed_with_warp_sinks` fan the emulation across workers
/// while the merged recording stays bit-identical to a sequential run.
#[derive(Default)]
struct StepRecorder {
    rec: WarpRec,
}

impl StepSink for StepRecorder {
    fn on_step(&mut self, step: &BlockStep<'_>) {
        let rec = &mut self.rec;
        rec.steps.push(StepRec {
            func: step.func.0,
            block: step.block.0,
            active: step.active,
            grp_lo: rec.groups.len() as u32,
            mask: step.mask,
        });
        for (i, acc) in step.mem.iter() {
            rec.groups.push((i, rec.accs.len() as u32));
            rec.accs.extend_from_slice(acc);
        }
    }
}

/// Runs one lock-step emulation, returning both its [`AnalysisReport`]
/// and the compact [`WarpRecording`] of every warp's step stream. This is
/// the fused form of `analyze` + trace generation: the report and the
/// recording come from the *same* replay, so a pipeline that needs both
/// pays for one emulation instead of two.
///
/// # Errors
/// Propagates [`AnalyzeError`] from the underlying emulation.
pub fn record_warp_steps_indexed(
    program: &Program,
    traces: &TraceSet,
    index: &AnalysisIndex,
    config: &AnalyzerConfig,
) -> Result<(AnalysisReport, WarpRecording), AnalyzeError> {
    let (report, sinks) = analyze_indexed_with_warp_sinks(program, traces, index, config, |_| {
        StepRecorder::default()
    })?;
    let mut warps: Vec<WarpRec> = sinks.into_iter().map(|s| s.rec).collect();
    // The pre-parallel generator grew its warp list lazily, so warps past
    // the last one that ever stepped were absent; keep that shape.
    while warps.last().is_some_and(|w| w.steps.is_empty()) {
        warps.pop();
    }
    let recording = WarpRecording { warps, warp_size: config.warp_size };
    if config.obs.enabled() {
        // Lets callers distinguish a recording emulation from the plain
        // analyze-only pass: the staged pipeline asserts on this counter
        // to prove `analyze()` never pays for step-recording arenas.
        config.obs.counter(threadfuser_obs::Phase::WarpEmulate, "warp_recordings", 1);
        config.obs.counter(
            threadfuser_obs::Phase::WarpEmulate,
            "recorded_steps",
            recording.total_steps(),
        );
    }
    Ok((report, recording))
}

/// Expands one warp's recording into its micro-op stream.
fn expand_warp(rec: &WarpRec, recipes: &BlockRecipes, warp: u32) -> WarpTrace {
    // Exact capacity: the recipe arena knows every step's micro-op count
    // up front, so the output vector never reallocates.
    let total: usize =
        rec.steps.iter().map(|s| recipes.block(FuncId(s.func), BlockId(s.block)).len()).sum();
    let mut insts = Vec::with_capacity(total);
    for (si, s) in rec.steps.iter().enumerate() {
        let grp_hi = rec.steps.get(si + 1).map_or(rec.groups.len(), |n| n.grp_lo as usize);
        let mut g = s.grp_lo as usize;
        let base_pc = ((s.func as u64) << 24) | ((s.block as u64) << 8);
        let recipe = recipes.block(FuncId(s.func), BlockId(s.block));
        for (slot, m) in recipe.iter().enumerate() {
            let mem = if m.mem_inst == NO_MEM {
                None
            } else {
                // Group indices and recipe payload indices are both
                // non-decreasing: one linear cursor per step.
                while g < grp_hi && rec.groups[g].0 < m.mem_inst {
                    g += 1;
                }
                let acc = if g < grp_hi && rec.groups[g].0 == m.mem_inst {
                    let lo = rec.groups[g].1 as usize;
                    let hi = rec.groups.get(g + 1).map_or(rec.accs.len(), |&(_, alo)| alo as usize);
                    rec.accs[lo..hi].to_vec()
                } else {
                    Vec::new()
                };
                let space = space_of(&acc);
                Some(MemOp { space, is_store: m.is_store, accesses: acc })
            };
            insts.push(WarpInst {
                pc: base_pc | slot as u64,
                op: m.op,
                mask: s.mask,
                active: s.active,
                mem,
            });
        }
    }
    WarpTrace { warp, insts }
}

/// Materializes a [`WarpRecording`] into warp-level instruction traces:
/// the CISC → RISC decomposition (precomputed per block) applied to every
/// recorded step. Reported under the `coalesce` phase — this is the trace
/// materialization work, separated from the lock-step replay itself.
pub fn expand_warp_recording(
    program: &Program,
    recording: &WarpRecording,
    config: &AnalyzerConfig,
) -> WarpTraceSet {
    let span = config.obs.span(threadfuser_obs::Phase::Coalesce);
    let recipes = BlockRecipes::build(program);
    let warps: Vec<WarpTrace> = recording
        .warps
        .iter()
        .enumerate()
        .map(|(w, rec)| expand_warp(rec, &recipes, w as u32))
        .collect();
    let set = WarpTraceSet { warp_size: recording.warp_size, warps };
    if config.obs.enabled() {
        let obs = &config.obs;
        obs.counter(threadfuser_obs::Phase::Coalesce, "warp_insts", set.total_insts());
        let mem_ops: u64 =
            set.warps.iter().flat_map(|w| &w.insts).filter(|i| i.mem.is_some()).count() as u64;
        obs.counter(threadfuser_obs::Phase::Coalesce, "mem_micro_ops", mem_ops);
    }
    span.finish();
    set
}

/// Generates warp-based instruction traces by replaying the analyzer's
/// lock-step emulation (per-function DCFG + SIMT stack) and decomposing
/// each TFIR instruction into RISC micro-ops.
///
/// Builds a throwaway [`AnalysisIndex`] internally; callers sweeping
/// configurations over one capture should build the index once and use
/// [`generate_warp_traces_indexed`].
///
/// # Errors
/// Propagates [`AnalyzeError`] from the underlying emulation.
pub fn generate_warp_traces(
    program: &Program,
    traces: &TraceSet,
    config: &AnalyzerConfig,
) -> Result<WarpTraceSet, AnalyzeError> {
    let index = AnalysisIndex::build_observed(program, traces, &config.obs)?;
    generate_warp_traces_indexed(program, traces, &index, config)
}

/// [`generate_warp_traces`] against a prebuilt [`AnalysisIndex`] — the
/// warm path of a config sweep. The index must come from the same
/// `(program, traces)` pair.
///
/// # Errors
/// Propagates [`AnalyzeError`] from the underlying emulation.
pub fn generate_warp_traces_indexed(
    program: &Program,
    traces: &TraceSet,
    index: &AnalysisIndex,
    config: &AnalyzerConfig,
) -> Result<WarpTraceSet, AnalyzeError> {
    let (_, recording) = record_warp_steps_indexed(program, traces, index, config)?;
    Ok(expand_warp_recording(program, &recording, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use threadfuser_ir::{AluOp, Cond, FuncId, Operand, ProgramBuilder};
    use threadfuser_machine::MachineConfig;
    use threadfuser_tracer::trace_program;

    fn gen(pb_k: (Program, FuncId), n: u32, w: u32) -> WarpTraceSet {
        let (p, k) = pb_k;
        let (traces, _) = trace_program(&p, MachineConfig::new(k, n)).unwrap();
        generate_warp_traces(&p, &traces, &AnalyzerConfig::new(w)).unwrap()
    }

    fn cisc_add_program() -> (Program, FuncId) {
        let mut pb = ProgramBuilder::new();
        let g = pb.global_i64("g", &[1, 2, 3, 4, 5, 6, 7, 8]);
        let out = pb.global("out", 8 * 8);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let m = fb.global_ref(g, Operand::Reg(tid), 8);
            // CISC add with memory operand.
            let v = fb.alu(AluOp::Add, 10i64, Operand::Mem(m));
            let dst = fb.global_ref(out, Operand::Reg(tid), 8);
            fb.store(dst, v);
            fb.ret(None);
        });
        (pb.build().unwrap(), k)
    }

    #[test]
    fn cisc_alu_with_mem_operand_decomposes_to_load_plus_alu() {
        let wt = gen(cisc_add_program(), 8, 8);
        let w = &wt.warps()[0];
        let classes: Vec<OpClass> = w.insts.iter().map(|i| i.op).collect();
        // load (from CISC add), add, store, ret
        assert_eq!(classes, vec![OpClass::Load, OpClass::IntAlu, OpClass::Store, OpClass::CallRet]);
    }

    #[test]
    fn stack_accesses_map_to_local_space() {
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let v = fb.var(8);
            fb.store_var(v, 1i64);
            let r = fb.load_var(v);
            fb.ret(Some(Operand::Reg(r)));
        });
        let p = pb.build().unwrap();
        let wt = gen((p, k), 8, 8);
        let mems: Vec<&MemOp> = wt.warps()[0].insts.iter().filter_map(|i| i.mem.as_ref()).collect();
        assert_eq!(mems.len(), 2);
        assert!(mems.iter().all(|m| m.space == MemSpace::Local));
        assert!(mems[0].is_store && !mems[1].is_store);
    }

    #[test]
    fn global_accesses_map_to_global_space() {
        let wt = gen(cisc_add_program(), 8, 8);
        let mems: Vec<&MemOp> = wt.warps()[0].insts.iter().filter_map(|i| i.mem.as_ref()).collect();
        assert!(mems.iter().all(|m| m.space == MemSpace::Global));
    }

    #[test]
    fn divergent_branch_yields_partial_masks() {
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let bit = fb.alu(AluOp::And, tid, 1i64);
            fb.if_then(Cond::Eq, bit, 0i64, |fb| fb.nop());
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let wt = gen((p, k), 8, 8);
        let masks: Vec<u32> = wt.warps()[0].insts.iter().map(|i| i.active).collect();
        assert!(masks.contains(&8), "full-mask instructions exist");
        assert!(masks.contains(&4), "half-mask (divergent) instructions exist");
    }

    #[test]
    fn mem_accesses_cover_all_active_lanes() {
        let wt = gen(cisc_add_program(), 8, 8);
        for w in wt.warps() {
            for i in &w.insts {
                if let Some(m) = &i.mem {
                    assert_eq!(m.accesses.len(), i.active as usize);
                }
            }
        }
    }

    #[test]
    fn warp_traces_round_trip_through_json() {
        let wt = gen(cisc_add_program(), 8, 4);
        let json = serde_json::to_string(&wt).unwrap();
        let back: WarpTraceSet = serde_json::from_str(&json).unwrap();
        assert_eq!(wt, back);
    }

    #[test]
    fn warp_count_matches_batching() {
        let wt = gen(cisc_add_program(), 8, 4);
        assert_eq!(wt.warps().len(), 2);
        assert_eq!(wt.warp_size(), 4);
        assert!(wt.total_insts() > 0);
    }
}
