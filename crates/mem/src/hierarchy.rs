//! Two-level cache hierarchy backed by DRAM.
//!
//! One [`Hierarchy`] instance models the path a 32-byte transaction takes:
//! L1 (per core, passed by the caller) is modelled separately by the
//! simulators; this type composes a shared L2 and DRAM. The CPU simulator
//! instantiates one per socket; the SIMT simulator one per device.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::dram::{Dram, DramConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the shared L2 + DRAM path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// DRAM timing.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// GPU-device defaults (large L2, high-bandwidth DRAM).
    pub fn gpu_default() -> Self {
        HierarchyConfig {
            l2: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                line_bytes: 32,
                ways: 16,
                write_allocate: true,
            },
            l2_latency: 90,
            dram: DramConfig::gpu_default(),
        }
    }

    /// CPU-socket defaults.
    pub fn cpu_default() -> Self {
        HierarchyConfig {
            l2: CacheConfig::l2_default(),
            l2_latency: 40,
            dram: DramConfig::cpu_default(),
        }
    }
}

/// Where a transaction was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Hit in the shared L2.
    L2Hit,
    /// Missed L2, serviced by DRAM.
    DramAccess,
}

/// Counters for a [`Hierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Transactions that hit in L2.
    pub l2_hits: u64,
    /// Transactions serviced by DRAM.
    pub dram_accesses: u64,
}

/// Shared L2 + DRAM composition.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l2: Cache,
    dram: Dram,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Hierarchy {
            config,
            l2: Cache::new(config.l2),
            dram: Dram::new(config.dram),
            stats: HierarchyStats::default(),
        }
    }

    /// Services one 32-byte transaction arriving at `now`; returns
    /// `(completion_cycle, outcome)`.
    pub fn access(&mut self, now: u64, addr: u64, is_store: bool) -> (u64, AccessOutcome) {
        let l2 = self.l2.access(addr, is_store);
        if l2.hit {
            self.stats.l2_hits += 1;
            (now + self.config.l2_latency, AccessOutcome::L2Hit)
        } else {
            self.stats.dram_accesses += 1;
            if l2.writeback {
                // Dirty eviction occupies the channel but nothing waits on it.
                let _ = self.dram.access(now);
            }
            let done = self.dram.access(now + self.config.l2_latency);
            (done, AccessOutcome::DramAccess)
        }
    }

    /// Hierarchy counters.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// L2 cache counters.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// DRAM transactions serviced (including writebacks).
    pub fn dram_transactions(&self) -> u64 {
        self.dram.transactions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l2: CacheConfig { size_bytes: 128, line_bytes: 32, ways: 2, write_allocate: true },
            l2_latency: 10,
            dram: DramConfig { latency: 100, cycles_per_transaction: 4 },
        })
    }

    #[test]
    fn miss_then_hit_latencies() {
        let mut h = tiny();
        let (t1, o1) = h.access(0, 0x100, false);
        assert_eq!(o1, AccessOutcome::DramAccess);
        assert_eq!(t1, 110); // l2_latency + dram latency
        let (t2, o2) = h.access(0, 0x100, false);
        assert_eq!(o2, AccessOutcome::L2Hit);
        assert_eq!(t2, 10);
    }

    #[test]
    fn bandwidth_contention_visible_through_l2_misses() {
        let mut h = tiny();
        let (a, _) = h.access(0, 0x0, false);
        let (b, _) = h.access(0, 0x1000, false);
        assert!(b > a, "second concurrent miss queues behind the first");
    }

    #[test]
    fn writeback_consumes_bandwidth_but_does_not_stall() {
        let mut h = tiny();
        // Dirty a line, then force its eviction with same-set fills.
        h.access(0, 0x0, true);
        let before = h.dram_transactions();
        // Lines mapping to the same set in the 2-set tiny cache.
        h.access(0, 0x1000, false);
        h.access(0, 0x2000, false);
        h.access(0, 0x3000, false);
        let after = h.dram_transactions();
        // At least one extra transaction beyond the three demand fills
        // indicates the writeback hit the channel.
        assert!(after >= before + 3);
    }

    #[test]
    fn stats_track_outcomes() {
        let mut h = tiny();
        h.access(0, 0, false);
        h.access(0, 0, false);
        assert_eq!(h.stats().dram_accesses, 1);
        assert_eq!(h.stats().l2_hits, 1);
    }
}
