//! Memory-access coalescing (paper Fig. 4).
//!
//! SIMT hardware merges the per-lane accesses of one warp-level load/store
//! into the minimal set of 32-byte transactions. ThreadFuser applies the
//! same rule when estimating memory divergence: for each memory
//! instruction, the addresses touched by all *active* threads are bucketed
//! into 32-byte-aligned lines and the number of distinct lines is the
//! transaction count.

/// Transaction granularity in bytes (32 B, matching NVIDIA sectors and the
/// paper's reporting).
pub const TRANSACTION_BYTES: u64 = 32;

/// Counts the distinct 32-byte transactions needed to service the given
/// `(address, size)` accesses issued together by one warp instruction.
///
/// Accesses may straddle a line boundary, in which case they contribute to
/// every line they touch. An empty iterator yields zero transactions.
///
/// ```
/// use threadfuser_mem::coalesce_transactions;
/// // Four adjacent 8-byte accesses fit in one 32-byte line.
/// let n = coalesce_transactions([(0u64, 8u32), (8, 8), (16, 8), (24, 8)]);
/// assert_eq!(n, 1);
/// // Strided accesses each need their own transaction.
/// let n = coalesce_transactions([(0u64, 8u32), (64, 8), (128, 8), (192, 8)]);
/// assert_eq!(n, 4);
/// ```
pub fn coalesce_transactions(accesses: impl IntoIterator<Item = (u64, u32)>) -> u32 {
    // Warps are small (≤ 64 lanes); a sorted Vec beats a HashSet here.
    let mut lines: Vec<u64> = Vec::with_capacity(8);
    coalesce_transactions_with(&mut lines, accesses)
}

/// [`coalesce_transactions`] with a caller-provided scratch buffer, for
/// hot loops that coalesce once per emulated memory instruction. The
/// buffer is cleared on entry; its capacity is retained across calls.
pub fn coalesce_transactions_with(
    lines: &mut Vec<u64>,
    accesses: impl IntoIterator<Item = (u64, u32)>,
) -> u32 {
    lines.clear();
    for (addr, size) in accesses {
        debug_assert!(size > 0, "zero-sized access");
        let first = addr / TRANSACTION_BYTES;
        // Saturate: an access at the top of the address space must not
        // wrap `addr + size - 1` around to line 0 (decoded traces can
        // carry any u64 address); it is clamped to the last line instead.
        let last = addr.saturating_add(size.saturating_sub(1) as u64) / TRANSACTION_BYTES;
        for line in first..=last {
            lines.push(line);
        }
    }
    lines.sort_unstable();
    lines.dedup();
    lines.len() as u32
}

/// Two-way tagged coalescing: counts distinct 32-byte lines separately
/// for plain (`tag = false`) and tagged (`tag = true`) accesses in **one**
/// radix pass — each line key carries its tag in bit 63 (free because
/// `line = addr / 32 < 2^59`), so a single sort+run-length scan replaces
/// two classify-then-coalesce rounds. Returns
/// `(plain_transactions, tagged_transactions)`.
///
/// ThreadFuser's emulator tags stack-segment accesses, coalescing each
/// memory instruction's heap and stack traffic in one pass; results are
/// identical to calling [`coalesce_transactions`] on the two partitions.
///
/// ```
/// use threadfuser_mem::coalesce_transactions_tagged;
/// let mut scratch = Vec::new();
/// let (heap, stack) = coalesce_transactions_tagged(
///     &mut scratch,
///     [(0u64, 8u32, false), (8, 8, false), (1 << 40, 8, true)],
/// );
/// assert_eq!((heap, stack), (1, 1));
/// ```
pub fn coalesce_transactions_tagged(
    lines: &mut Vec<u64>,
    accesses: impl IntoIterator<Item = (u64, u32, bool)>,
) -> (u32, u32) {
    const TAG: u64 = 1 << 63;
    lines.clear();
    for (addr, size, tag) in accesses {
        debug_assert!(size > 0, "zero-sized access");
        let tag = if tag { TAG } else { 0 };
        let first = addr / TRANSACTION_BYTES;
        // Same saturating clamp as `coalesce_transactions_with`.
        let last = addr.saturating_add(size.saturating_sub(1) as u64) / TRANSACTION_BYTES;
        for line in first..=last {
            lines.push(line | tag);
        }
    }
    lines.sort_unstable();
    let mut plain = 0u32;
    let mut tagged = 0u32;
    let mut prev = None;
    for &key in lines.iter() {
        if prev == Some(key) {
            continue;
        }
        prev = Some(key);
        if key & TAG == 0 {
            plain += 1;
        } else {
            tagged += 1;
        }
    }
    (plain, tagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(coalesce_transactions(std::iter::empty()), 0);
    }

    #[test]
    fn single_access_one_transaction() {
        assert_eq!(coalesce_transactions([(100u64, 4u32)]), 1);
    }

    #[test]
    fn straddling_access_counts_both_lines() {
        // 8-byte access at offset 28 touches lines 0 and 1.
        assert_eq!(coalesce_transactions([(28u64, 8u32)]), 2);
    }

    #[test]
    fn fully_coalesced_warp32_4byte() {
        // The paper's ideal: 32 threads × 4-byte adjacent = 4 transactions.
        let accesses = (0..32u64).map(|i| (i * 4, 4u32));
        assert_eq!(coalesce_transactions(accesses), 4);
    }

    #[test]
    fn fully_coalesced_warp32_8byte() {
        // 32 threads × 8-byte adjacent = 8 transactions (paper §III).
        let accesses = (0..32u64).map(|i| (i * 8, 8u32));
        assert_eq!(coalesce_transactions(accesses), 8);
    }

    #[test]
    fn same_address_broadcast_is_one() {
        let accesses = (0..32u64).map(|_| (4096u64, 8u32));
        assert_eq!(coalesce_transactions(accesses), 1);
    }

    #[test]
    fn worst_case_divergent() {
        let accesses = (0..32u64).map(|i| (i * 4096, 4u32));
        assert_eq!(coalesce_transactions(accesses), 32);
    }

    #[test]
    fn near_max_address_does_not_wrap() {
        // An 8-byte access starting at u64::MAX would wrap addr+size-1 to
        // line 0; saturating math keeps it on the last line instead of
        // counting 2^59 phantom transactions (or debug-panicking).
        assert_eq!(coalesce_transactions([(u64::MAX, 8u32)]), 1);
        // Straddling the very last line boundary still counts both lines.
        assert_eq!(coalesce_transactions([(u64::MAX - 32, 8u32)]), 2);
        assert_eq!(coalesce_transactions([(u64::MAX - 7, 8u32)]), 1);
    }

    /// Addresses across the whole space, weighted toward the overflow-bait
    /// top end where `addr + size` can exceed `u64::MAX`.
    fn arb_addr() -> impl Strategy<Value = u64> {
        prop_oneof![0u64..1 << 40, u64::MAX - 64..=u64::MAX]
    }

    proptest! {
        #[test]
        fn at_least_one_per_nonempty_and_bounded(
            addrs in proptest::collection::vec((arb_addr(), 1u32..=8), 1..64)
        ) {
            let n = coalesce_transactions(addrs.iter().copied());
            prop_assert!(n >= 1);
            // Each access touches at most 2 lines for sizes <= 32.
            prop_assert!(n as usize <= addrs.len() * 2);
        }

        #[test]
        fn permutation_invariant(
            mut addrs in proptest::collection::vec((0u64..1 << 30, 1u32..=8), 1..32)
        ) {
            let a = coalesce_transactions(addrs.iter().copied());
            addrs.reverse();
            let b = coalesce_transactions(addrs.iter().copied());
            prop_assert_eq!(a, b);
        }

        #[test]
        fn tagged_matches_two_partitioned_calls(
            addrs in proptest::collection::vec((arb_addr(), 1u32..=8, any::<bool>()), 0..64)
        ) {
            let mut scratch = Vec::new();
            let (plain, tagged) =
                coalesce_transactions_tagged(&mut scratch, addrs.iter().copied());
            let old_plain = coalesce_transactions(
                addrs.iter().filter(|a| !a.2).map(|&(a, s, _)| (a, s)),
            );
            let old_tagged = coalesce_transactions(
                addrs.iter().filter(|a| a.2).map(|&(a, s, _)| (a, s)),
            );
            prop_assert_eq!((plain, tagged), (old_plain, old_tagged));
        }

        #[test]
        fn subadditive_under_union(
            a in proptest::collection::vec((0u64..1 << 30, 1u32..=8), 1..16),
            b in proptest::collection::vec((0u64..1 << 30, 1u32..=8), 1..16),
        ) {
            let na = coalesce_transactions(a.iter().copied());
            let nb = coalesce_transactions(b.iter().copied());
            let both = coalesce_transactions(a.iter().chain(b.iter()).copied());
            prop_assert!(both <= na + nb);
            prop_assert!(both >= na.max(nb));
        }
    }
}
