//! DRAM timing model: fixed access latency plus a bandwidth-limited
//! service queue.
//!
//! The model is intentionally simple (as in many trace-driven simulators):
//! each transaction occupies the channel for `cycles_per_transaction`
//! cycles; a request arriving at cycle `t` completes at
//! `max(t, channel_free) + latency`.

use serde::{Deserialize, Serialize};

/// DRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Fixed access latency in cycles.
    pub latency: u64,
    /// Channel occupancy per 32-byte transaction, in cycles (inverse
    /// bandwidth).
    pub cycles_per_transaction: u64,
}

impl DramConfig {
    /// GPU-class DRAM: high bandwidth, moderate latency.
    pub fn gpu_default() -> Self {
        DramConfig { latency: 200, cycles_per_transaction: 2 }
    }

    /// CPU-class DRAM: lower bandwidth, lower latency.
    pub fn cpu_default() -> Self {
        DramConfig { latency: 120, cycles_per_transaction: 8 }
    }
}

/// Bandwidth-limited DRAM channel.
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    channel_free: u64,
    transactions: u64,
    busy_cycles: u64,
}

impl Dram {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        Dram { config, channel_free: 0, transactions: 0, busy_cycles: 0 }
    }

    /// Services one transaction arriving at `now`; returns its completion
    /// cycle.
    pub fn access(&mut self, now: u64) -> u64 {
        let start = now.max(self.channel_free);
        self.channel_free = start + self.config.cycles_per_transaction;
        self.transactions += 1;
        self.busy_cycles += self.config.cycles_per_transaction;
        start + self.config.latency
    }

    /// Total transactions serviced.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Cycles the channel was occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// The earliest cycle at which a new transaction could start.
    pub fn channel_free_at(&self) -> u64 {
        self.channel_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency() {
        let mut d = Dram::new(DramConfig { latency: 100, cycles_per_transaction: 4 });
        assert_eq!(d.access(10), 110);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = Dram::new(DramConfig { latency: 100, cycles_per_transaction: 4 });
        assert_eq!(d.access(0), 100);
        // Second request at the same cycle waits for the channel.
        assert_eq!(d.access(0), 104);
        assert_eq!(d.access(0), 108);
        assert_eq!(d.transactions(), 3);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = Dram::new(DramConfig { latency: 100, cycles_per_transaction: 4 });
        d.access(0);
        assert_eq!(d.access(1000), 1100, "no queueing after a long gap");
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut d = Dram::new(DramConfig { latency: 10, cycles_per_transaction: 3 });
        d.access(0);
        d.access(0);
        assert_eq!(d.busy_cycles(), 6);
    }
}
