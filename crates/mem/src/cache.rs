//! Set-associative cache model with LRU replacement.
//!
//! Used as the L1D/L2 of the SIMT simulator and the private/shared caches
//! of the CPU timing model. The model is *tag-only* (no data array): it
//! answers hit/miss and tracks writebacks, which is all a timing model
//! needs.

use serde::{Deserialize, Serialize};

/// Geometry and policy of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Allocate lines on store misses (write-allocate) or not.
    pub write_allocate: bool,
}

impl CacheConfig {
    /// A 32 KiB, 4-way, 32 B-line L1 configuration.
    pub fn l1_default() -> Self {
        CacheConfig { size_bytes: 32 * 1024, line_bytes: 32, ways: 4, write_allocate: true }
    }

    /// A 2 MiB, 16-way, 32 B-line L2 configuration.
    pub fn l2_default() -> Self {
        CacheConfig { size_bytes: 2 * 1024 * 1024, line_bytes: 32, ways: 16, write_allocate: true }
    }

    fn n_sets(&self) -> u64 {
        (self.size_bytes / self.line_bytes / self.ways as u64).max(1)
    }
}

/// Hit/miss counters of a [`Cache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read accesses.
    pub read_accesses: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write accesses.
    pub write_accesses: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Overall miss rate over all accesses (0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        let acc = self.read_accesses + self.write_accesses;
        if acc == 0 {
            0.0
        } else {
            (self.read_misses + self.write_misses) as f64 / acc as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative, LRU, write-back cache (tag array only).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty line was evicted to make room.
    pub writeback: bool,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    /// Panics if `line_bytes` is not a power of two or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways > 0, "associativity must be nonzero");
        let n = (config.n_sets() * config.ways as u64) as usize;
        Cache {
            config,
            sets: vec![Line { tag: 0, valid: false, dirty: false, lru: 0 }; n],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Accesses `addr`; `is_store` selects read/write accounting and dirty
    /// marking. Returns hit/miss and whether a writeback occurred.
    pub fn access(&mut self, addr: u64, is_store: bool) -> CacheAccess {
        self.tick += 1;
        let line_addr = addr / self.config.line_bytes;
        // XOR-folded set index: breaks the pathological aliasing of large
        // power-of-two strides (e.g. 1 MiB-spaced thread stacks), as real
        // GPU/CPU cache indexing functions do.
        let hashed = line_addr ^ (line_addr >> 11) ^ (line_addr >> 23);
        let set = (hashed % self.config.n_sets()) as usize;
        let ways = self.config.ways as usize;
        let base = set * ways;
        if is_store {
            self.stats.write_accesses += 1;
        } else {
            self.stats.read_accesses += 1;
        }

        // Hit?
        for i in base..base + ways {
            let line = &mut self.sets[i];
            if line.valid && line.tag == line_addr {
                line.lru = self.tick;
                line.dirty |= is_store;
                return CacheAccess { hit: true, writeback: false };
            }
        }

        // Miss.
        if is_store {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        if is_store && !self.config.write_allocate {
            return CacheAccess { hit: false, writeback: false };
        }

        // Fill the LRU victim.
        let victim = (base..base + ways)
            .min_by_key(|&i| if self.sets[i].valid { self.sets[i].lru } else { 0 })
            .expect("nonzero associativity");
        let evicted_dirty = self.sets[victim].valid && self.sets[victim].dirty;
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        self.sets[victim] = Line { tag: line_addr, valid: true, dirty: is_store, lru: self.tick };
        CacheAccess { hit: false, writeback: evicted_dirty }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        for line in &mut self.sets {
            line.valid = false;
            line.dirty = false;
        }
        self.tick = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 32 B lines = 128 B.
        Cache::new(CacheConfig { size_bytes: 128, line_bytes: 32, ways: 2, write_allocate: true })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(31, false).hit, "same line");
        assert!(!c.access(64, false).hit, "same set, different tag");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines 0 and 2 (addresses 0 and 128 map to set 0).
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // make line 0 most recent
        c.access(256, false); // evicts line at 128
        assert!(c.access(0, false).hit);
        assert!(!c.access(128, false).hit);
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny();
        c.access(0, true); // dirty
        c.access(128, false);
        let a = c.access(256, false); // evicts one of them
        let b = c.access(384, false); // evicts the other
        assert!(a.writeback || b.writeback, "the dirty line must write back");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn no_write_allocate_skips_fill() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 32,
            ways: 2,
            write_allocate: false,
        });
        assert!(!c.access(0, true).hit);
        assert!(!c.access(0, false).hit, "store miss did not allocate");
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = tiny();
        c.access(0, false);
        c.reset();
        assert!(!c.access(0, false).hit);
        assert_eq!(c.stats().read_accesses, 1);
    }

    proptest! {
        #[test]
        fn stats_are_consistent(ops in proptest::collection::vec((0u64..4096, any::<bool>()), 1..200)) {
            let mut c = tiny();
            for (addr, st) in &ops {
                c.access(*addr, *st);
            }
            let s = c.stats();
            prop_assert_eq!(s.read_accesses + s.write_accesses, ops.len() as u64);
            prop_assert!(s.read_misses <= s.read_accesses);
            prop_assert!(s.write_misses <= s.write_accesses);
            prop_assert!(s.writebacks <= s.read_misses + s.write_misses);
        }

        #[test]
        fn repeated_single_line_always_hits_after_first(n in 2usize..50) {
            let mut c = tiny();
            c.access(0, false);
            for _ in 1..n {
                prop_assert!(c.access(0, false).hit);
            }
        }
    }
}
