#![warn(missing_docs)]

//! # ThreadFuser memory-system components
//!
//! Shared building blocks for every part of the framework that reasons
//! about memory:
//!
//! * [`coalesce`] — the 32-byte-transaction coalescer used by the analyzer,
//!   the lock-step ground-truth executor, and the SIMT simulator (paper
//!   Fig. 4),
//! * [`cache`] — a set-associative, LRU, write-back cache model,
//! * [`dram`] — a latency/bandwidth DRAM model,
//! * [`hierarchy`] — an L1→L2→DRAM composition used by both the SIMT and
//!   CPU timing simulators.

pub mod cache;
pub mod coalesce;
pub mod dram;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use coalesce::{
    coalesce_transactions, coalesce_transactions_tagged, coalesce_transactions_with,
    TRANSACTION_BYTES,
};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{AccessOutcome, Hierarchy, HierarchyConfig, HierarchyStats};
