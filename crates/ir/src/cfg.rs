//! Static control-flow graphs and the immediate post-dominator solver.
//!
//! ThreadFuser reconverges diverged warps at the immediate post-dominator
//! (IPDOM) of the diverging branch, like GPGPU-Sim. The solver here is the
//! classic Cooper–Harvey–Kennedy iterative dominance algorithm run on the
//! *reversed* graph rooted at a **virtual exit block** appended to every
//! function, which forces all return paths to converge at function end
//! (paper §III: "a virtual basic block at the end of each function").
//!
//! The same `ipdom_of` routine is reused by the trace analyzer on its
//! *dynamic* CFGs, so prediction and ground truth share one definition of
//! reconvergence.

use crate::ids::BlockId;
use crate::program::Function;

/// Computes immediate post-dominators for a graph given as successor
/// adjacency lists, with `exit` as the unique sink all paths converge to.
///
/// Returns, for each node, its immediate post-dominator (`None` for `exit`
/// itself and for nodes that cannot reach `exit`).
///
/// Thin wrapper over [`ipdom_of_csr`]: flattens the per-node lists into
/// CSR form and runs the same Cooper–Harvey–Kennedy solver. Callers that
/// already hold CSR adjacency (the analyzer's dynamic CFGs) skip the
/// flattening and call the core directly.
pub fn ipdom_of(succs: &[Vec<usize>], exit: usize) -> Vec<Option<usize>> {
    let mut off = Vec::with_capacity(succs.len() + 1);
    off.push(0u32);
    let mut edges = Vec::with_capacity(succs.iter().map(Vec::len).sum());
    for s in succs {
        edges.extend(s.iter().map(|&v| v as u32));
        off.push(edges.len() as u32);
    }
    ipdom_of_csr(&off, &edges, exit)
}

/// [`ipdom_of`] on CSR adjacency: node `u`'s successors are
/// `edges[off[u] as usize..off[u + 1] as usize]`, so the node count is
/// `off.len() - 1`. The solver is Cooper–Harvey–Kennedy dominance on the
/// reversed graph, rooted at `exit`; the predecessor CSR it needs is
/// derived with one counting sort — no per-node allocation anywhere.
pub fn ipdom_of_csr(off: &[u32], edges: &[u32], exit: usize) -> Vec<Option<usize>> {
    let n = off.len().checked_sub(1).expect("offset array has a terminator");
    assert!(exit < n, "exit node out of range");
    let node_succs =
        |u: usize| edges[off[u] as usize..off[u + 1] as usize].iter().map(|&v| v as usize);

    // Predecessor CSR of the original graph = successor CSR of the
    // reversed graph, via counting sort. Filling in node order keeps each
    // predecessor run ascending, like the adjacency-list build did.
    let mut pred_off = vec![0u32; n + 1];
    for &v in edges {
        pred_off[v as usize + 1] += 1;
    }
    for i in 0..n {
        pred_off[i + 1] += pred_off[i];
    }
    let mut preds = vec![0u32; edges.len()];
    let mut cursor: Vec<u32> = pred_off[..n].to_vec();
    for u in 0..n {
        for v in node_succs(u) {
            preds[cursor[v] as usize] = u as u32;
            cursor[v] += 1;
        }
    }

    // Reverse postorder of the reversed graph (DFS from exit following
    // original predecessor edges).
    let mut postorder = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack: Vec<(usize, u32)> = vec![(exit, pred_off[exit])];
    visited[exit] = true;
    while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
        if *idx < pred_off[node + 1] {
            let next = preds[*idx as usize] as usize;
            *idx += 1;
            if !visited[next] {
                visited[next] = true;
                stack.push((next, pred_off[next]));
            }
        } else {
            postorder.push(node);
            stack.pop();
        }
    }
    let rpo: Vec<usize> = postorder.iter().rev().copied().collect();
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &node) in rpo.iter().enumerate() {
        rpo_index[node] = i;
    }

    let mut idom: Vec<Option<usize>> = vec![None; n];
    idom[exit] = Some(exit);

    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a].expect("processed node has idom");
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            // Predecessors in the reversed graph are original successors.
            let mut new_idom: Option<usize> = None;
            for s in node_succs(b) {
                if idom[s].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => s,
                    Some(cur) => intersect(&idom, cur, s),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }

    idom[exit] = None;
    idom
}

/// Per-function static CFG with a virtual exit node and precomputed IPDOMs.
#[derive(Debug, Clone)]
pub struct FuncCfg {
    n_blocks: usize,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    ipdom: Vec<Option<usize>>,
}

impl FuncCfg {
    /// Builds the CFG of `f`, appends the virtual exit, and solves IPDOMs.
    ///
    /// Call edges are *not* CFG edges: a call's intra-procedural successor
    /// is its continuation block, matching the per-function DCFGs of the
    /// paper.
    pub fn from_function(f: &Function) -> Self {
        let n_blocks = f.blocks.len();
        let exit = n_blocks;
        let mut succs: Vec<Vec<usize>> = Vec::with_capacity(n_blocks + 1);
        for b in &f.blocks {
            let mut s: Vec<usize> = b.term.successors().iter().map(|t| t.0 as usize).collect();
            if s.is_empty() {
                // Return: edge to the virtual exit.
                s.push(exit);
            }
            succs.push(s);
        }
        succs.push(Vec::new()); // the virtual exit has no successors
        let ipdom = ipdom_of(&succs, exit);
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n_blocks + 1];
        for (u, ss) in succs.iter().enumerate() {
            for &v in ss {
                preds[v].push(u);
            }
        }
        FuncCfg { n_blocks, succs, preds, ipdom }
    }

    /// Number of real (non-virtual) blocks.
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Node index of the virtual exit.
    pub fn virtual_exit(&self) -> usize {
        self.n_blocks
    }

    /// Successor node indices of `node` (blocks index as themselves; the
    /// virtual exit is [`Self::virtual_exit`]).
    pub fn succs(&self, node: usize) -> &[usize] {
        &self.succs[node]
    }

    /// Predecessor node indices of `node`.
    pub fn preds(&self, node: usize) -> &[usize] {
        &self.preds[node]
    }

    /// Immediate post-dominator of a block (may be the virtual exit).
    pub fn ipdom(&self, b: BlockId) -> Option<usize> {
        self.ipdom[b.0 as usize]
    }

    /// Immediate post-dominator of an arbitrary node index.
    pub fn ipdom_node(&self, node: usize) -> Option<usize> {
        self.ipdom[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::{Cond, Operand};

    #[test]
    fn diamond_ipdom_is_join() {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3; 3 -> exit(4)
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![4], vec![]];
        let ipd = ipdom_of(&succs, 4);
        assert_eq!(ipd[0], Some(3));
        assert_eq!(ipd[1], Some(3));
        assert_eq!(ipd[2], Some(3));
        assert_eq!(ipd[3], Some(4));
        assert_eq!(ipd[4], None);
    }

    #[test]
    fn nested_diamonds() {
        // 0 -> {1, 5}; 1 -> {2,3}; 2->4; 3->4; 4->6; 5->6; 6->exit(7)
        let succs =
            vec![vec![1, 5], vec![2, 3], vec![4], vec![4], vec![6], vec![6], vec![7], vec![]];
        let ipd = ipdom_of(&succs, 7);
        assert_eq!(ipd[1], Some(4), "inner branch reconverges at inner join");
        assert_eq!(ipd[0], Some(6), "outer branch reconverges at outer join");
    }

    #[test]
    fn loop_ipdom_is_exit_block() {
        // 0 -> 1; 1 -> {2, 3} (loop back edge 2 -> 1); 3 -> exit(4)
        let succs = vec![vec![1], vec![2, 3], vec![1], vec![4], vec![]];
        let ipd = ipdom_of(&succs, 4);
        assert_eq!(ipd[1], Some(3), "loop header reconverges at loop exit");
        assert_eq!(ipd[2], Some(1));
    }

    #[test]
    fn node_not_reaching_exit_has_none() {
        // 0 -> {1,2}; 1 -> exit(3); 2 -> 2 (infinite self loop)
        let succs = vec![vec![1, 2], vec![3], vec![2], vec![]];
        let ipd = ipdom_of(&succs, 3);
        assert_eq!(ipd[2], None);
        // 0 still postdominated by exit through 1? 0's only path to exit is
        // via 1, but IPDOM requires *all* paths; the path through 2 never
        // reaches exit, so dataflow converges on the 1-path alone (standard
        // behaviour for nonterminating paths).
        assert_eq!(ipd[0], Some(1));
    }

    #[test]
    fn csr_solver_matches_adjacency_wrapper() {
        // Same graphs as above, fed through both entry points.
        let graphs: Vec<(Vec<Vec<usize>>, usize)> = vec![
            (vec![vec![1, 2], vec![3], vec![3], vec![4], vec![]], 4),
            (vec![vec![1, 5], vec![2, 3], vec![4], vec![4], vec![6], vec![6], vec![7], vec![]], 7),
            (vec![vec![1], vec![2, 3], vec![1], vec![4], vec![]], 4),
            (vec![vec![1, 2], vec![3], vec![2], vec![]], 3),
        ];
        for (succs, exit) in graphs {
            let mut off = vec![0u32];
            let mut edges = Vec::new();
            for s in &succs {
                edges.extend(s.iter().map(|&v| v as u32));
                off.push(edges.len() as u32);
            }
            assert_eq!(ipdom_of_csr(&off, &edges, exit), ipdom_of(&succs, exit));
        }
    }

    #[test]
    fn func_cfg_virtual_exit_joins_multiple_returns() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 1, |fb| {
            let a = fb.arg(0);
            let t = fb.new_block();
            let e = fb.new_block();
            fb.br(Cond::Gt, a, 0i64, t, e);
            fb.switch_to(t);
            fb.ret(Some(Operand::Imm(1)));
            fb.switch_to(e);
            fb.ret(Some(Operand::Imm(0)));
        });
        let p = pb.build().unwrap();
        let cfg = FuncCfg::from_function(&p.functions()[0]);
        // Both returns post-dominated by the virtual exit; the branch block's
        // IPDOM is the virtual exit itself.
        assert_eq!(cfg.ipdom(BlockId(0)), Some(cfg.virtual_exit()));
        assert_eq!(cfg.ipdom(BlockId(1)), Some(cfg.virtual_exit()));
    }

    #[test]
    fn func_cfg_if_then_else_ipdom() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 1, |fb| {
            let a = fb.arg(0);
            fb.if_then_else(Cond::Gt, a, 0i64, |fb| fb.nop(), |fb| fb.nop());
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let f = &p.functions()[0];
        let cfg = FuncCfg::from_function(f);
        // entry(0) branches to then(1)/else(2), join(3)
        assert_eq!(cfg.ipdom(BlockId(0)), Some(3));
    }

    #[test]
    fn preds_are_inverse_of_succs() {
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![4], vec![]];
        let _ = ipdom_of(&succs, 4);
        let mut pb = ProgramBuilder::new();
        pb.function("f", 0, |fb| {
            fb.if_then(Cond::Eq, 0i64, 0i64, |fb| fb.nop());
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let cfg = FuncCfg::from_function(&p.functions()[0]);
        for node in 0..=cfg.virtual_exit() {
            for &s in cfg.succs(node) {
                assert!(cfg.preds(s).contains(&node));
            }
        }
    }
}
