//! Ergonomic construction of TFIR programs.
//!
//! The builder emits *naive, unoptimized* code on purpose: every source
//! variable created with [`FunctionBuilder::var`] lives in a stack-frame
//! slot and is re-loaded/re-stored around each use, exactly like `gcc -O0`
//! output. The [`crate::opt`] passes then model the higher optimization
//! levels of the paper's correlation sweep.

use crate::ids::{BlockId, FuncId, GlobalId, Reg};
use crate::inst::{AccessSize, AluOp, Base, Cond, Inst, IoKind, MemRef, Operand, Terminator};
use crate::program::{BasicBlock, Function, Global, Program, ValidateError};

/// A stack-frame slot created by [`FunctionBuilder::var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slot {
    offset: u32,
    size: AccessSize,
}

impl Slot {
    /// Frame offset in bytes.
    pub fn offset(&self) -> u32 {
        self.offset
    }

    /// The memory reference for this slot.
    pub fn mem(&self) -> MemRef {
        MemRef::frame(self.offset as i64, self.size)
    }
}

/// Builds a whole [`Program`]: declare globals, then functions.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Function>,
    globals: Vec<Global>,
    reserved: Vec<String>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a zero-initialized global of `size` bytes.
    pub fn global(&mut self, name: &str, size: u64) -> GlobalId {
        self.global_init(name, size, Vec::new())
    }

    /// Declares a global with an initializer (zero-padded to `size`).
    ///
    /// # Panics
    /// Panics if the initializer is longer than `size`.
    pub fn global_init(&mut self, name: &str, size: u64, init: Vec<u8>) -> GlobalId {
        assert!(init.len() as u64 <= size, "initializer longer than global");
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global { name: name.to_string(), size, init });
        id
    }

    /// Declares a global initialized from little-endian `i64` words.
    pub fn global_i64(&mut self, name: &str, words: &[i64]) -> GlobalId {
        let mut init = Vec::with_capacity(words.len() * 8);
        for w in words {
            init.extend_from_slice(&w.to_le_bytes());
        }
        let size = init.len() as u64;
        self.global_init(name, size, init)
    }

    /// Reserves a [`FuncId`] for a function defined later with
    /// [`Self::define`], enabling forward references (mutual recursion).
    pub fn declare(&mut self, name: &str) -> FuncId {
        let id = FuncId((self.functions.len() + self.reserved.len()) as u32);
        self.reserved.push(name.to_string());
        id
    }

    /// Defines a function immediately; returns its id.
    ///
    /// The closure receives a [`FunctionBuilder`] positioned at the entry
    /// block and must end every control path (the builder auto-terminates a
    /// trailing open block with `ret`).
    pub fn function(
        &mut self,
        name: &str,
        params: u16,
        f: impl FnOnce(&mut FunctionBuilder),
    ) -> FuncId {
        let id = self.declare(name);
        self.define(id, params, f);
        id
    }

    /// Defines a previously [`Self::declare`]d function.
    ///
    /// # Panics
    /// Panics if `id` was not produced by `declare` on this builder or has
    /// already been defined.
    pub fn define(&mut self, id: FuncId, params: u16, f: impl FnOnce(&mut FunctionBuilder)) {
        let pending = id.0 as usize - self.functions.len();
        assert!(pending < self.reserved.len(), "define() on an unknown or already-defined FuncId");
        let name = self.reserved[pending].clone();
        let mut fb = FunctionBuilder::new(name, params);
        f(&mut fb);
        let func = fb.finish();
        // Functions must land at their declared index: flush in order.
        assert_eq!(
            pending, 0,
            "functions must be defined in declaration order (define {id:?} after its predecessors)"
        );
        self.reserved.remove(0);
        self.functions.push(func);
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    /// Returns a [`ValidateError`] if any structural invariant is violated.
    ///
    /// # Panics
    /// Panics if declared functions remain undefined.
    pub fn build(self) -> Result<Program, ValidateError> {
        assert!(self.reserved.is_empty(), "undefined declared functions: {:?}", self.reserved);
        Program::new(self.functions, self.globals)
    }
}

/// Builds one function block-by-block.
///
/// The builder keeps a *current block*; instruction-emitting methods append
/// to it, and control-flow methods terminate it and (usually) open a new
/// one.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: u16,
    next_reg: u16,
    scalar_size: u32,
    array_size: u32,
    blocks: Vec<(Vec<Inst>, Option<Terminator>)>,
    current: usize,
}

impl FunctionBuilder {
    fn new(name: String, params: u16) -> Self {
        FunctionBuilder {
            name,
            params,
            next_reg: params,
            scalar_size: 0,
            array_size: 0,
            blocks: vec![(Vec::new(), None)],
            current: 0,
        }
    }

    /// Parameter register `i` (`r0..`).
    ///
    /// # Panics
    /// Panics if `i` is out of the declared parameter range.
    pub fn arg(&self, i: u16) -> Reg {
        assert!(i < self.params, "argument index {i} out of range");
        Reg(i)
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocates a stack-frame variable of 1/2/4/8 bytes.
    ///
    /// Scalars live in the low frame region (below
    /// [`Self::ARRAY_REGION`]); frame arrays live above it. The split
    /// keeps register promotion of scalars sound in functions that also
    /// hold address-taken arrays.
    ///
    /// # Panics
    /// Panics if `size` is not 1, 2, 4, or 8, or if the scalar region
    /// overflows.
    pub fn var(&mut self, size: u32) -> Slot {
        let access = match size {
            1 => AccessSize::B1,
            2 => AccessSize::B2,
            4 => AccessSize::B4,
            8 => AccessSize::B8,
            _ => panic!("variable size must be 1, 2, 4, or 8 bytes"),
        };
        // Keep slots naturally aligned.
        let offset = self.scalar_size.div_ceil(size) * size;
        self.scalar_size = offset + size;
        assert!(
            self.scalar_size <= Self::ARRAY_REGION,
            "scalar frame region overflow ({} slots of 8B max)",
            Self::ARRAY_REGION / 8
        );
        Slot { offset, size: access }
    }

    /// First frame offset of the array region (see [`Self::var`]).
    pub const ARRAY_REGION: u32 = 2048;

    /// Allocates a frame-resident array of `len` elements of `elem_size`
    /// bytes in the high frame region; returns the base offset. Accesses
    /// use [`Self::frame_ref`].
    pub fn frame_array(&mut self, len: u32, elem_size: u32) -> u32 {
        let base = self.array_size.max(Self::ARRAY_REGION);
        let offset = base.div_ceil(elem_size) * elem_size;
        self.array_size = offset + len * elem_size;
        offset
    }

    // ---- memory reference helpers -------------------------------------

    /// `global + index*size + 0` reference, with `index` an operand
    /// materialized to a register if needed.
    pub fn global_ref(&mut self, g: GlobalId, index: Operand, elem_size: u64) -> MemRef {
        let size = access(elem_size);
        match index {
            Operand::Imm(i) => MemRef::global(g, None, i * elem_size as i64, size),
            Operand::Reg(r) => MemRef::global(g, Some((r, elem_size as u8)), 0, size),
            Operand::Mem(_) => {
                let r = self.mov(index);
                MemRef::global(g, Some((r, elem_size as u8)), 0, size)
            }
        }
    }

    /// Frame array reference `frame + base_off + index*elem_size`.
    pub fn frame_ref(&mut self, base_off: u32, index: Operand, elem_size: u64) -> MemRef {
        let size = access(elem_size);
        match index {
            Operand::Imm(i) => MemRef::frame(base_off as i64 + i * elem_size as i64, size),
            Operand::Reg(r) => MemRef {
                base: Base::Frame,
                index: Some((r, elem_size as u8)),
                disp: base_off as i64,
                size,
            },
            Operand::Mem(_) => {
                let r = self.mov(index);
                MemRef {
                    base: Base::Frame,
                    index: Some((r, elem_size as u8)),
                    disp: base_off as i64,
                    size,
                }
            }
        }
    }

    /// Pointer-based reference `reg + index*elem_size + disp`.
    pub fn ptr_ref(&mut self, ptr: Reg, index: Operand, elem_size: u64, disp: i64) -> MemRef {
        let size = access(elem_size);
        match index {
            Operand::Imm(i) => MemRef::reg(ptr, disp + i * elem_size as i64, size),
            Operand::Reg(r) => MemRef::reg_index(ptr, r, elem_size as u8, disp, size),
            Operand::Mem(_) => {
                let r = self.mov(index);
                MemRef::reg_index(ptr, r, elem_size as u8, disp, size)
            }
        }
    }

    // ---- instruction emission ------------------------------------------

    fn emit(&mut self, inst: Inst) {
        assert!(
            self.blocks[self.current].1.is_none(),
            "emitting into a terminated block; switch_to() a new one first"
        );
        self.blocks[self.current].0.push(inst);
    }

    /// `dst = a <op> b` into a fresh register.
    pub fn alu(&mut self, op: AluOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Alu { op, dst, a: a.into(), b: b.into() });
        dst
    }

    /// `dst = a <op> b` into an existing register.
    pub fn alu_into(&mut self, dst: Reg, op: AluOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.emit(Inst::Alu { op, dst, a: a.into(), b: b.into() });
    }

    /// Materializes an operand into a fresh register (a load when `src` is
    /// a memory operand).
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Mov { dst, src: src.into() });
        dst
    }

    /// `dst = src` into an existing register.
    pub fn mov_into(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.emit(Inst::Mov { dst, src: src.into() });
    }

    /// Loads a frame variable.
    pub fn load_var(&mut self, slot: Slot) -> Reg {
        self.mov(Operand::Mem(slot.mem()))
    }

    /// Stores to a frame variable.
    pub fn store_var(&mut self, slot: Slot, src: impl Into<Operand>) {
        self.emit(Inst::Store { addr: slot.mem(), src: src.into() });
    }

    /// Loads through an arbitrary memory reference.
    pub fn load(&mut self, addr: MemRef) -> Reg {
        self.mov(Operand::Mem(addr))
    }

    /// Stores through an arbitrary memory reference.
    pub fn store(&mut self, addr: MemRef, src: impl Into<Operand>) {
        self.emit(Inst::Store { addr, src: src.into() });
    }

    /// `dst = &addr`.
    pub fn lea(&mut self, addr: MemRef) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Lea { dst, addr });
        dst
    }

    /// Heap allocation.
    pub fn alloc(&mut self, size: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.emit(Inst::Alloc { dst, size: size.into() });
        dst
    }

    /// Heap free.
    pub fn free(&mut self, addr: impl Into<Operand>) {
        self.emit(Inst::Free { addr: addr.into() });
    }

    /// Opaque I/O worth `cost` skipped instructions.
    pub fn io(&mut self, kind: IoKind, cost: u32) {
        self.emit(Inst::Io { kind, cost });
    }

    /// Emits a no-op (padding for efficiency experiments).
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    // ---- control flow ----------------------------------------------------

    /// Creates a new, empty, unterminated block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Redirects emission to `block`.
    ///
    /// # Panics
    /// Panics if `block` is already terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(self.blocks[block.0 as usize].1.is_none(), "switch_to() on a terminated block");
        self.current = block.0 as usize;
    }

    /// The block currently receiving instructions.
    pub fn current_block(&self) -> BlockId {
        BlockId(self.current as u32)
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(self.blocks[self.current].1.is_none(), "block already terminated");
        self.blocks[self.current].1 = Some(term);
    }

    /// Ends the current block with an unconditional jump.
    pub fn jmp(&mut self, target: BlockId) {
        self.terminate(Terminator::Jmp(target));
    }

    /// Ends the current block with a conditional branch.
    pub fn br(
        &mut self,
        cond: Cond,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        taken: BlockId,
        fallthrough: BlockId,
    ) {
        self.terminate(Terminator::Br { cond, a: a.into(), b: b.into(), taken, fallthrough });
    }

    /// Ends the current block with a jump table.
    pub fn switch(
        &mut self,
        val: impl Into<Operand>,
        base: i64,
        targets: Vec<BlockId>,
        default: BlockId,
    ) {
        self.terminate(Terminator::Switch { val: val.into(), base, targets, default });
    }

    /// Calls `callee`, resuming in a fresh block; returns the result
    /// register.
    pub fn call(&mut self, callee: FuncId, args: &[Operand]) -> Reg {
        let dst = self.reg();
        let ret_to = self.new_block();
        self.terminate(Terminator::Call { callee, args: args.to_vec(), ret_to, dst: Some(dst) });
        self.switch_to(ret_to);
        dst
    }

    /// Calls `callee` discarding any return value.
    pub fn call_void(&mut self, callee: FuncId, args: &[Operand]) {
        let ret_to = self.new_block();
        self.terminate(Terminator::Call { callee, args: args.to_vec(), ret_to, dst: None });
        self.switch_to(ret_to);
    }

    /// Ends the current block with a return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.terminate(Terminator::Ret { val });
    }

    /// Acquires the mutex at address `lock`, resuming in a fresh block.
    pub fn acquire(&mut self, lock: impl Into<Operand>) {
        let next = self.new_block();
        self.terminate(Terminator::Acquire { lock: lock.into(), next });
        self.switch_to(next);
    }

    /// Releases the mutex at address `lock`, resuming in a fresh block.
    pub fn release(&mut self, lock: impl Into<Operand>) {
        let next = self.new_block();
        self.terminate(Terminator::Release { lock: lock.into(), next });
        self.switch_to(next);
    }

    /// Crosses barrier `id`, resuming in a fresh block.
    pub fn barrier(&mut self, id: u32) {
        let next = self.new_block();
        self.terminate(Terminator::Barrier { id, next });
        self.switch_to(next);
    }

    // ---- structured-control helpers ---------------------------------------

    /// Builds a `for (i = start; i < end; i += step)` loop whose induction
    /// variable lives in a frame slot (O0-style). The body closure receives
    /// the builder and a register holding the current `i`.
    pub fn for_range(
        &mut self,
        start: impl Into<Operand>,
        end: impl Into<Operand>,
        step: i64,
        body: impl FnOnce(&mut FunctionBuilder, Reg),
    ) {
        let i = self.var(8);
        let end_v = self.var(8);
        let end_op = end.into();
        let end_r = self.mov(end_op);
        self.store_var(end_v, end_r);
        let start_op = start.into();
        let start_r = self.mov(start_op);
        self.store_var(i, start_r);

        let head = self.new_block();
        let body_b = self.new_block();
        let exit = self.new_block();
        self.jmp(head);

        self.switch_to(head);
        let iv = self.load_var(i);
        self.br(Cond::Lt, iv, Operand::Mem(end_v.mem()), body_b, exit);

        self.switch_to(body_b);
        let iv2 = self.load_var(i);
        body(self, iv2);
        // body may have switched blocks; continue from wherever it left off
        let next = self.load_var(i);
        let bumped = self.alu(AluOp::Add, next, step);
        self.store_var(i, bumped);
        self.jmp(head);

        self.switch_to(exit);
    }

    /// Builds a `while (cond_reg_producer() != 0)` loop. The `cond` closure
    /// emits code computing the condition into a register each iteration;
    /// the loop runs while it is non-zero.
    pub fn while_nonzero(
        &mut self,
        cond: impl Fn(&mut FunctionBuilder) -> Reg,
        body: impl FnOnce(&mut FunctionBuilder),
    ) {
        let head = self.new_block();
        let body_b = self.new_block();
        let exit = self.new_block();
        self.jmp(head);

        self.switch_to(head);
        let c = cond(self);
        self.br(Cond::Ne, c, 0i64, body_b, exit);

        self.switch_to(body_b);
        body(self);
        self.jmp(head);

        self.switch_to(exit);
    }

    /// Builds `if (a cond b) { then }` with reconvergence after.
    pub fn if_then(
        &mut self,
        cond: Cond,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        then: impl FnOnce(&mut FunctionBuilder),
    ) {
        let t = self.new_block();
        let join = self.new_block();
        self.br(cond, a, b, t, join);
        self.switch_to(t);
        then(self);
        self.jmp(join);
        self.switch_to(join);
    }

    /// Builds `if (a cond b) { then } else { els }` with reconvergence.
    pub fn if_then_else(
        &mut self,
        cond: Cond,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        then: impl FnOnce(&mut FunctionBuilder),
        els: impl FnOnce(&mut FunctionBuilder),
    ) {
        let t = self.new_block();
        let e = self.new_block();
        let join = self.new_block();
        self.br(cond, a, b, t, e);
        self.switch_to(t);
        then(self);
        self.jmp(join);
        self.switch_to(e);
        els(self);
        self.jmp(join);
        self.switch_to(join);
    }

    fn finish(mut self) -> Function {
        // Auto-terminate a trailing open current block for convenience.
        if self.blocks[self.current].1.is_none() {
            self.blocks[self.current].1 = Some(Terminator::Ret { val: None });
        }
        let blocks: Vec<BasicBlock> = self
            .blocks
            .into_iter()
            .map(|(insts, term)| BasicBlock {
                insts,
                // Unreachable never-terminated side blocks become returns.
                term: term.unwrap_or(Terminator::Ret { val: None }),
            })
            .collect();
        let frame_size = if self.array_size > 0 { self.array_size } else { self.scalar_size };
        Function {
            name: self.name,
            params: self.params,
            reg_count: self.next_reg.max(self.params),
            frame_size: round_up(frame_size, 16),
            blocks,
            entry: BlockId(0),
        }
    }
}

fn access(elem_size: u64) -> AccessSize {
    match elem_size {
        1 => AccessSize::B1,
        2 => AccessSize::B2,
        4 => AccessSize::B4,
        8 => AccessSize::B8,
        _ => panic!("element size must be 1, 2, 4, or 8 bytes"),
    }
}

fn round_up(v: u32, align: u32) -> u32 {
    v.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_straightline_function() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 1, |fb| {
            let a = fb.arg(0);
            let b = fb.alu(AluOp::Add, a, 1i64);
            fb.ret(Some(Operand::Reg(b)));
        });
        let p = pb.build().unwrap();
        assert_eq!(p.functions().len(), 1);
        assert_eq!(p.functions()[0].blocks.len(), 1);
    }

    #[test]
    fn for_range_builds_loop_shape() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("out", 8 * 64);
        pb.function("k", 1, |fb| {
            fb.for_range(0i64, 8i64, 1, |fb, i| {
                let dst = fb.global_ref(g, Operand::Reg(i), 8);
                fb.store(dst, i);
            });
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        // entry + head + body + exit at minimum
        assert!(p.functions()[0].blocks.len() >= 4);
        p.validate().unwrap();
    }

    #[test]
    fn if_then_else_reconverges() {
        let mut pb = ProgramBuilder::new();
        pb.function("k", 1, |fb| {
            let a = fb.arg(0);
            fb.if_then_else(
                Cond::Gt,
                a,
                0i64,
                |fb| {
                    fb.nop();
                },
                |fb| {
                    fb.nop();
                    fb.nop();
                },
            );
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let f = &p.functions()[0];
        // entry, then, else, join
        assert_eq!(f.blocks.len(), 4);
        // both then and else jump to the same join block
        let succ_t = f.blocks[1].term.successors();
        let succ_e = f.blocks[2].term.successors();
        assert_eq!(succ_t, succ_e);
    }

    #[test]
    fn calls_pass_through_fresh_continuation() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.function("callee", 1, |fb| {
            let a = fb.arg(0);
            fb.ret(Some(Operand::Reg(a)));
        });
        pb.function("caller", 0, |fb| {
            let r = fb.call(callee, &[Operand::Imm(42)]);
            fb.ret(Some(Operand::Reg(r)));
        });
        let p = pb.build().unwrap();
        let caller = &p.functions()[1];
        assert_eq!(caller.blocks.len(), 2);
        assert!(matches!(caller.blocks[0].term, Terminator::Call { .. }));
    }

    #[test]
    fn declare_then_define_supports_forward_refs() {
        let mut pb = ProgramBuilder::new();
        let a = pb.declare("a");
        let b = pb.declare("b");
        pb.define(a, 0, |fb| {
            fb.call_void(b, &[]);
            fb.ret(None);
        });
        pb.define(b, 0, |fb| {
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        assert_eq!(p.find_function("a"), Some(FuncId(0)));
        assert_eq!(p.find_function("b"), Some(FuncId(1)));
    }

    #[test]
    fn vars_are_aligned_and_frame_rounded() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 0, |fb| {
            let a = fb.var(1);
            let b = fb.var(8);
            assert_eq!(a.offset(), 0);
            assert_eq!(b.offset(), 8);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        assert_eq!(p.functions()[0].frame_size % 16, 0);
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn emitting_into_terminated_block_panics() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 0, |fb| {
            fb.ret(None);
            fb.nop();
        });
    }

    #[test]
    fn while_nonzero_shape() {
        let mut pb = ProgramBuilder::new();
        pb.function("f", 1, |fb| {
            let n = fb.var(8);
            let a0 = fb.arg(0);
            fb.store_var(n, a0);
            fb.while_nonzero(
                |fb| fb.load_var(n),
                |fb| {
                    let v = fb.load_var(n);
                    let d = fb.alu(AluOp::Sub, v, 1i64);
                    fb.store_var(n, d);
                },
            );
            fb.ret(None);
        });
        pb.build().unwrap();
    }
}
