//! Whole TFIR programs: functions, basic blocks, globals, and validation.

use crate::ids::{BlockId, FuncId, GlobalId, Reg};
use crate::inst::{Base, Inst, MemRef, Operand, Terminator};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A basic block: straight-line instructions plus exactly one terminator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// Control transfer ending the block.
    pub term: Terminator,
}

impl BasicBlock {
    /// Number of dynamic instructions the block represents when executed
    /// (body plus the terminator itself).
    pub fn len_with_term(&self) -> u32 {
        self.insts.len() as u32 + 1
    }
}

/// A function: a register frame, a stack frame, and a block list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Human-readable name (unique within the program).
    pub name: String,
    /// Number of parameters, passed in `r0..r(params-1)`.
    pub params: u16,
    /// Number of virtual registers used (`r0..r(reg_count-1)`).
    pub reg_count: u16,
    /// Stack-frame size in bytes.
    pub frame_size: u32,
    /// Basic blocks; `BlockId(i)` indexes this vector.
    pub blocks: Vec<BasicBlock>,
    /// Entry block.
    pub entry: BlockId,
}

impl Function {
    /// Borrow a block by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range (validated programs never do this).
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Iterator over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }
}

/// A global data object, loaded at a fixed heap-segment address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Global {
    /// Human-readable name (unique within the program).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Optional initializer (zero-filled when shorter than `size`).
    pub init: Vec<u8>,
}

/// A complete TFIR program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    functions: Vec<Function>,
    globals: Vec<Global>,
}

impl Program {
    /// Assembles a program from parts, validating the result.
    ///
    /// # Errors
    /// Returns the first [`ValidateError`] found.
    pub fn new(functions: Vec<Function>, globals: Vec<Global>) -> Result<Self, ValidateError> {
        let p = Program { functions, globals };
        p.validate()?;
        Ok(p)
    }

    /// All functions; `FuncId(i)` indexes this slice.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// All globals; `GlobalId(i)` indexes this slice.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// Borrow a function by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Mutable access for optimizer passes (crate-internal).
    pub(crate) fn functions_mut(&mut self) -> &mut Vec<Function> {
        &mut self.functions
    }

    /// Looks up a function id by name.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Total static instruction count (bodies plus terminators).
    pub fn static_inst_count(&self) -> u64 {
        self.functions
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.len_with_term() as u64).sum::<u64>())
            .sum()
    }

    /// Checks structural invariants; see [`ValidateError`] for the rules.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for (fi, f) in self.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            if f.params > f.reg_count {
                return Err(ValidateError::ParamsExceedRegs { func: fid });
            }
            if f.blocks.is_empty() {
                return Err(ValidateError::EmptyFunction { func: fid });
            }
            if f.entry.0 as usize >= f.blocks.len() {
                return Err(ValidateError::BadBlockRef { func: fid, block: f.entry });
            }
            for (bi, b) in f.iter_blocks() {
                for (ii, inst) in b.insts.iter().enumerate() {
                    self.validate_inst(fid, f, bi, ii, inst)?;
                }
                self.validate_term(fid, f, bi, &b.term)?;
            }
        }
        let mut names: Vec<&str> = self.functions.iter().map(|f| f.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err(ValidateError::DuplicateName);
        }
        Ok(())
    }

    fn validate_operand(
        &self,
        func: FuncId,
        f: &Function,
        block: BlockId,
        op: &Operand,
    ) -> Result<(), ValidateError> {
        match op {
            Operand::Reg(r) => self.validate_reg(func, f, block, *r),
            Operand::Imm(_) => Ok(()),
            Operand::Mem(m) => self.validate_memref(func, f, block, m),
        }
    }

    fn validate_reg(
        &self,
        func: FuncId,
        f: &Function,
        block: BlockId,
        r: Reg,
    ) -> Result<(), ValidateError> {
        if r.0 >= f.reg_count {
            Err(ValidateError::BadReg { func, block, reg: r })
        } else {
            Ok(())
        }
    }

    fn validate_memref(
        &self,
        func: FuncId,
        f: &Function,
        block: BlockId,
        m: &MemRef,
    ) -> Result<(), ValidateError> {
        match m.base {
            Base::Reg(r) => self.validate_reg(func, f, block, r)?,
            Base::Global(g) => {
                if g.0 as usize >= self.globals.len() {
                    return Err(ValidateError::BadGlobal { func, block, global: g });
                }
            }
            Base::None | Base::Frame => {}
        }
        if let Some((r, scale)) = m.index {
            self.validate_reg(func, f, block, r)?;
            if !matches!(scale, 1 | 2 | 4 | 8) {
                return Err(ValidateError::BadScale { func, block, scale });
            }
        }
        Ok(())
    }

    fn validate_inst(
        &self,
        func: FuncId,
        f: &Function,
        block: BlockId,
        idx: usize,
        inst: &Inst,
    ) -> Result<(), ValidateError> {
        let mem_ops = |ops: &[&Operand]| ops.iter().filter(|o| o.mem().is_some()).count();
        match inst {
            Inst::Alu { dst, a, b, .. } => {
                self.validate_reg(func, f, block, *dst)?;
                self.validate_operand(func, f, block, a)?;
                self.validate_operand(func, f, block, b)?;
                if mem_ops(&[a, b]) > 1 {
                    return Err(ValidateError::TwoMemOperands { func, block, inst: idx });
                }
            }
            Inst::Mov { dst, src } => {
                self.validate_reg(func, f, block, *dst)?;
                self.validate_operand(func, f, block, src)?;
            }
            Inst::Store { addr, src } => {
                self.validate_memref(func, f, block, addr)?;
                self.validate_operand(func, f, block, src)?;
                if src.mem().is_some() {
                    return Err(ValidateError::TwoMemOperands { func, block, inst: idx });
                }
            }
            Inst::Lea { dst, addr } => {
                self.validate_reg(func, f, block, *dst)?;
                self.validate_memref(func, f, block, addr)?;
            }
            Inst::Alloc { dst, size } => {
                self.validate_reg(func, f, block, *dst)?;
                self.validate_operand(func, f, block, size)?;
            }
            Inst::Free { addr } => self.validate_operand(func, f, block, addr)?,
            Inst::Io { .. } | Inst::Nop => {}
        }
        Ok(())
    }

    fn validate_term(
        &self,
        func: FuncId,
        f: &Function,
        block: BlockId,
        term: &Terminator,
    ) -> Result<(), ValidateError> {
        for s in term.successors() {
            if s.0 as usize >= f.blocks.len() {
                return Err(ValidateError::BadBlockRef { func, block: s });
            }
        }
        match term {
            Terminator::Br { a, b, .. } => {
                self.validate_operand(func, f, block, a)?;
                self.validate_operand(func, f, block, b)?;
                if a.mem().is_some() && b.mem().is_some() {
                    return Err(ValidateError::TwoMemOperands { func, block, inst: usize::MAX });
                }
            }
            Terminator::Switch { val, .. } => self.validate_operand(func, f, block, val)?,
            Terminator::Call { callee, args, dst, .. } => {
                let Some(cf) = self.functions.get(callee.0 as usize) else {
                    return Err(ValidateError::BadCallee { func, block, callee: *callee });
                };
                if args.len() != cf.params as usize {
                    return Err(ValidateError::ArgCountMismatch {
                        func,
                        block,
                        callee: *callee,
                        expected: cf.params,
                        got: args.len(),
                    });
                }
                for a in args {
                    self.validate_operand(func, f, block, a)?;
                    if a.mem().is_some() {
                        return Err(ValidateError::TwoMemOperands {
                            func,
                            block,
                            inst: usize::MAX,
                        });
                    }
                }
                if let Some(d) = dst {
                    self.validate_reg(func, f, block, *d)?;
                }
            }
            Terminator::Ret { val: Some(v) } => self.validate_operand(func, f, block, v)?,
            Terminator::Acquire { lock, .. } | Terminator::Release { lock, .. } => {
                self.validate_operand(func, f, block, lock)?;
                if lock.mem().is_some() {
                    return Err(ValidateError::TwoMemOperands { func, block, inst: usize::MAX });
                }
            }
            _ => {}
        }
        Ok(())
    }
}

/// Structural validation failures for [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A function declares more parameters than registers.
    ParamsExceedRegs {
        /// Offending function.
        func: FuncId,
    },
    /// A function has no blocks.
    EmptyFunction {
        /// Offending function.
        func: FuncId,
    },
    /// A terminator or entry references a block out of range.
    BadBlockRef {
        /// Containing function.
        func: FuncId,
        /// The bad reference.
        block: BlockId,
    },
    /// A register index is out of the function's register frame.
    BadReg {
        /// Containing function.
        func: FuncId,
        /// Containing block.
        block: BlockId,
        /// The bad register.
        reg: Reg,
    },
    /// A memory reference names a global out of range.
    BadGlobal {
        /// Containing function.
        func: FuncId,
        /// Containing block.
        block: BlockId,
        /// The bad global.
        global: GlobalId,
    },
    /// An index scale other than 1, 2, 4, or 8.
    BadScale {
        /// Containing function.
        func: FuncId,
        /// Containing block.
        block: BlockId,
        /// The bad scale.
        scale: u8,
    },
    /// More than one memory operand on a single instruction (x86 rule).
    TwoMemOperands {
        /// Containing function.
        func: FuncId,
        /// Containing block.
        block: BlockId,
        /// Instruction index (`usize::MAX` for the terminator).
        inst: usize,
    },
    /// A call names a function out of range.
    BadCallee {
        /// Containing function.
        func: FuncId,
        /// Containing block.
        block: BlockId,
        /// The bad callee.
        callee: FuncId,
    },
    /// A call passes the wrong number of arguments.
    ArgCountMismatch {
        /// Containing function.
        func: FuncId,
        /// Containing block.
        block: BlockId,
        /// Callee.
        callee: FuncId,
        /// Declared parameter count.
        expected: u16,
        /// Arguments supplied.
        got: usize,
    },
    /// Two functions share a name.
    DuplicateName,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::ParamsExceedRegs { func } => {
                write!(f, "{func}: more parameters than registers")
            }
            ValidateError::EmptyFunction { func } => write!(f, "{func}: function has no blocks"),
            ValidateError::BadBlockRef { func, block } => {
                write!(f, "{func}: reference to nonexistent {block}")
            }
            ValidateError::BadReg { func, block, reg } => {
                write!(f, "{func}:{block}: register {reg} out of frame")
            }
            ValidateError::BadGlobal { func, block, global } => {
                write!(f, "{func}:{block}: nonexistent global {global}")
            }
            ValidateError::BadScale { func, block, scale } => {
                write!(f, "{func}:{block}: invalid index scale {scale}")
            }
            ValidateError::TwoMemOperands { func, block, inst } => {
                write!(f, "{func}:{block}: instruction {inst} has two memory operands")
            }
            ValidateError::BadCallee { func, block, callee } => {
                write!(f, "{func}:{block}: call to nonexistent {callee}")
            }
            ValidateError::ArgCountMismatch { func, block, callee, expected, got } => {
                write!(f, "{func}:{block}: call to {callee} with {got} args, expected {expected}")
            }
            ValidateError::DuplicateName => write!(f, "duplicate function name"),
        }
    }
}

impl std::error::Error for ValidateError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AccessSize, AluOp};

    fn one_block_fn(name: &str, insts: Vec<Inst>, term: Terminator) -> Function {
        Function {
            name: name.to_string(),
            params: 1,
            reg_count: 4,
            frame_size: 64,
            blocks: vec![BasicBlock { insts, term }],
            entry: BlockId(0),
        }
    }

    #[test]
    fn valid_minimal_program() {
        let f = one_block_fn("main", vec![], Terminator::Ret { val: None });
        assert!(Program::new(vec![f], vec![]).is_ok());
    }

    #[test]
    fn rejects_bad_block_ref() {
        let f = one_block_fn("main", vec![], Terminator::Jmp(BlockId(5)));
        let err = Program::new(vec![f], vec![]).unwrap_err();
        assert!(matches!(err, ValidateError::BadBlockRef { .. }));
    }

    #[test]
    fn rejects_out_of_frame_register() {
        let f = one_block_fn(
            "main",
            vec![Inst::Mov { dst: Reg(99), src: Operand::Imm(0) }],
            Terminator::Ret { val: None },
        );
        let err = Program::new(vec![f], vec![]).unwrap_err();
        assert!(matches!(err, ValidateError::BadReg { .. }));
    }

    #[test]
    fn rejects_two_memory_operands() {
        let m = MemRef::frame(0, AccessSize::B8);
        let f = one_block_fn(
            "main",
            vec![Inst::Alu { op: AluOp::Add, dst: Reg(0), a: Operand::Mem(m), b: Operand::Mem(m) }],
            Terminator::Ret { val: None },
        );
        let err = Program::new(vec![f], vec![]).unwrap_err();
        assert!(matches!(err, ValidateError::TwoMemOperands { .. }));
    }

    #[test]
    fn rejects_bad_global() {
        let m = MemRef::global(GlobalId(3), None, 0, AccessSize::B4);
        let f = one_block_fn(
            "main",
            vec![Inst::Mov { dst: Reg(0), src: Operand::Mem(m) }],
            Terminator::Ret { val: None },
        );
        let err = Program::new(vec![f], vec![]).unwrap_err();
        assert!(matches!(err, ValidateError::BadGlobal { .. }));
    }

    #[test]
    fn rejects_arg_count_mismatch() {
        let callee = one_block_fn("callee", vec![], Terminator::Ret { val: None });
        let caller = Function {
            name: "caller".into(),
            params: 0,
            reg_count: 2,
            frame_size: 0,
            blocks: vec![
                BasicBlock {
                    insts: vec![],
                    term: Terminator::Call {
                        callee: FuncId(0),
                        args: vec![],
                        ret_to: BlockId(1),
                        dst: None,
                    },
                },
                BasicBlock { insts: vec![], term: Terminator::Ret { val: None } },
            ],
            entry: BlockId(0),
        };
        let err = Program::new(vec![callee, caller], vec![]).unwrap_err();
        assert!(matches!(err, ValidateError::ArgCountMismatch { expected: 1, got: 0, .. }));
    }

    #[test]
    fn rejects_duplicate_names() {
        let a = one_block_fn("f", vec![], Terminator::Ret { val: None });
        let b = one_block_fn("f", vec![], Terminator::Ret { val: None });
        assert_eq!(Program::new(vec![a, b], vec![]).unwrap_err(), ValidateError::DuplicateName);
    }

    #[test]
    fn find_function_by_name() {
        let a = one_block_fn("alpha", vec![], Terminator::Ret { val: None });
        let b = one_block_fn("beta", vec![], Terminator::Ret { val: None });
        let p = Program::new(vec![a, b], vec![]).unwrap();
        assert_eq!(p.find_function("beta"), Some(FuncId(1)));
        assert_eq!(p.find_function("gamma"), None);
    }

    #[test]
    fn static_inst_count_includes_terminators() {
        let f = one_block_fn("main", vec![Inst::Nop, Inst::Nop], Terminator::Ret { val: None });
        let p = Program::new(vec![f], vec![]).unwrap();
        assert_eq!(p.static_inst_count(), 3);
    }
}
