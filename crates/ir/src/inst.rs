//! TFIR instructions, operands, and block terminators.
//!
//! TFIR is deliberately CISC-flavoured: any single operand of an ALU
//! instruction (or a branch comparison) may be a memory reference, exactly
//! one per instruction, mirroring x86. The ThreadFuser warp-trace generator
//! later decomposes such instructions into RISC `load`/`alu`/`store`
//! sequences, as the paper describes for `add [mem]`.

use crate::ids::{BlockId, FuncId, GlobalId, Reg};
use serde::{Deserialize, Serialize};

/// Width in bytes of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl AccessSize {
    /// Size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            AccessSize::B1 => 1,
            AccessSize::B2 => 2,
            AccessSize::B4 => 4,
            AccessSize::B8 => 8,
        }
    }
}

/// Base of a memory reference address computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Base {
    /// No base (absolute displacement).
    None,
    /// A register value.
    Reg(Reg),
    /// The current function's frame pointer (stack-segment access).
    Frame,
    /// The address of a program global (heap-segment data).
    Global(GlobalId),
}

/// An x86-style memory reference: `base + index * scale + disp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Base of the address computation.
    pub base: Base,
    /// Optional scaled index register: `(reg, scale)`.
    pub index: Option<(Reg, u8)>,
    /// Constant displacement.
    pub disp: i64,
    /// Access width.
    pub size: AccessSize,
}

impl MemRef {
    /// A frame-relative (stack) reference at `disp` with width `size`.
    pub fn frame(disp: i64, size: AccessSize) -> Self {
        MemRef { base: Base::Frame, index: None, disp, size }
    }

    /// A global-relative reference: `global + index*scale + disp`.
    pub fn global(g: GlobalId, index: Option<(Reg, u8)>, disp: i64, size: AccessSize) -> Self {
        MemRef { base: Base::Global(g), index, disp, size }
    }

    /// A register-based reference: `reg + disp`.
    pub fn reg(base: Reg, disp: i64, size: AccessSize) -> Self {
        MemRef { base: Base::Reg(base), index: None, disp, size }
    }

    /// A register-based reference with a scaled index.
    pub fn reg_index(base: Reg, index: Reg, scale: u8, disp: i64, size: AccessSize) -> Self {
        MemRef { base: Base::Reg(base), index: Some((index, scale)), disp, size }
    }

    /// True when this reference targets the current thread's stack frame.
    pub fn is_frame(&self) -> bool {
        matches!(self.base, Base::Frame)
    }
}

/// Instruction or branch operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A register value.
    Reg(Reg),
    /// An immediate constant.
    Imm(i64),
    /// A memory operand (at most one per instruction).
    Mem(MemRef),
}

impl Operand {
    /// Returns the memory reference if this operand is a memory operand.
    pub fn mem(&self) -> Option<&MemRef> {
        match self {
            Operand::Mem(m) => Some(m),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

/// Binary ALU operations. All arithmetic is on `i64` with wrapping semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (`0` divisor traps at execution time).
    Div,
    /// Signed remainder (`0` divisor traps at execution time).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (shift amount masked to 63).
    Shl,
    /// Logical shift right (shift amount masked to 63).
    Shr,
    /// Arithmetic shift right (shift amount masked to 63).
    Sar,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl AluOp {
    /// Evaluates the operation on two `i64` inputs.
    ///
    /// Division and remainder by zero return `None` (the interpreter turns
    /// this into a trap).
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            AluOp::Rem => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => ((a as u64) << (b as u64 & 63)) as i64,
            AluOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
            AluOp::Sar => a >> (b as u64 & 63),
            AluOp::Min => a.min(b),
            AluOp::Max => a.max(b),
        })
    }
}

/// Kind of I/O operation. I/O is opaque to the analysis: the tracer counts
/// but does not trace these instructions (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// Read from an external source (socket/file).
    Read,
    /// Write to an external sink.
    Write,
}

/// A straight-line TFIR instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = a <op> b`. At most one of `a`, `b` may be [`Operand::Mem`].
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = src`; a load when `src` is a memory operand.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `[addr] = src`; `src` must not be a memory operand (x86 forbids
    /// mem-to-mem moves).
    Store {
        /// Destination memory reference.
        addr: MemRef,
        /// Value stored.
        src: Operand,
    },
    /// `dst = &addr` — address computation without a memory access.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address computed.
        addr: MemRef,
    },
    /// Heap allocation: `dst = malloc(size)`. Models the C++ allocator the
    /// microservice workloads exercise.
    Alloc {
        /// Receives the allocated address.
        dst: Reg,
        /// Allocation size in bytes.
        size: Operand,
    },
    /// Releases a heap allocation made by [`Inst::Alloc`].
    Free {
        /// Address previously returned by `Alloc`.
        addr: Operand,
    },
    /// Opaque I/O; `cost` native instructions are *skipped* by the tracer
    /// but counted for the traced-vs-skipped breakdown (paper Fig. 8).
    Io {
        /// Direction.
        kind: IoKind,
        /// Number of native instructions this operation stands for.
        cost: u32,
    },
    /// No operation (used as an optimization tombstone).
    Nop,
}

impl Inst {
    /// Returns the memory reference this instruction reads, if any.
    pub fn mem_read(&self) -> Option<&MemRef> {
        match self {
            Inst::Alu { a, b, .. } => a.mem().or_else(|| b.mem()),
            Inst::Mov { src, .. } => src.mem(),
            _ => None,
        }
    }

    /// Returns the memory reference this instruction writes, if any.
    pub fn mem_write(&self) -> Option<&MemRef> {
        match self {
            Inst::Store { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// True when executing this instruction touches memory.
    pub fn touches_memory(&self) -> bool {
        self.mem_read().is_some() || self.mem_write().is_some()
    }
}

/// Branch comparison predicates (signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
}

impl Cond {
    /// Evaluates the predicate.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
        }
    }

    /// The negated predicate.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

/// Block terminators. Control transfers happen only here, so a basic block
/// is always single-entry / single-exit, as the PIN tracer assumes.
///
/// Synchronization primitives are terminators (single successor) so the
/// analyzer can treat them as serialization points without splitting blocks,
/// mirroring how PIN ends a basic block at a syscall.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Two-way conditional branch; may carry one memory operand in `a`/`b`.
    Br {
        /// Predicate.
        cond: Cond,
        /// Left comparison operand.
        a: Operand,
        /// Right comparison operand.
        b: Operand,
        /// Successor when the predicate holds.
        taken: BlockId,
        /// Successor otherwise.
        fallthrough: BlockId,
    },
    /// Jump table: index `val - base` into `targets`, else `default`.
    Switch {
        /// Selector value.
        val: Operand,
        /// Value mapped to `targets[0]`.
        base: i64,
        /// Dense target table.
        targets: Vec<BlockId>,
        /// Out-of-range successor.
        default: BlockId,
    },
    /// Direct call; control resumes at `ret_to` after the callee returns.
    Call {
        /// Callee.
        callee: FuncId,
        /// Argument values copied into the callee's `r0..rN`.
        args: Vec<Operand>,
        /// Continuation block in the caller.
        ret_to: BlockId,
        /// Optional register receiving the callee's return value.
        dst: Option<Reg>,
    },
    /// Function return.
    Ret {
        /// Optional return value.
        val: Option<Operand>,
    },
    /// Acquire the mutex whose address is `lock`, then continue at `next`.
    Acquire {
        /// Lock address operand.
        lock: Operand,
        /// Single successor.
        next: BlockId,
    },
    /// Release the mutex whose address is `lock`, then continue at `next`.
    Release {
        /// Lock address operand.
        lock: Operand,
        /// Single successor.
        next: BlockId,
    },
    /// Program-wide barrier (all live threads must arrive).
    Barrier {
        /// Barrier identity.
        id: u32,
        /// Single successor.
        next: BlockId,
    },
}

impl Terminator {
    /// All static successor blocks, in branch order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jmp(t) => vec![*t],
            Terminator::Br { taken, fallthrough, .. } => vec![*taken, *fallthrough],
            Terminator::Switch { targets, default, .. } => {
                let mut v = targets.clone();
                v.push(*default);
                v.dedup();
                v
            }
            // A call's intra-procedural successor is its continuation; the
            // callee is not a CFG edge (per-function DCFGs, paper §III).
            Terminator::Call { ret_to, .. } => vec![*ret_to],
            Terminator::Ret { .. } => vec![],
            Terminator::Acquire { next, .. }
            | Terminator::Release { next, .. }
            | Terminator::Barrier { next, .. } => vec![*next],
        }
    }

    /// Memory reference read by the terminator's comparison, if any.
    pub fn mem_read(&self) -> Option<&MemRef> {
        match self {
            Terminator::Br { a, b, .. } => a.mem().or_else(|| b.mem()),
            Terminator::Switch { val, .. } => val.mem(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), Some(5));
        assert_eq!(AluOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(AluOp::Mul.eval(-4, 3), Some(-12));
        assert_eq!(AluOp::Div.eval(7, 2), Some(3));
        assert_eq!(AluOp::Div.eval(7, 0), None);
        assert_eq!(AluOp::Rem.eval(7, 0), None);
        assert_eq!(AluOp::Shl.eval(1, 4), Some(16));
        assert_eq!(AluOp::Sar.eval(-8, 1), Some(-4));
        assert_eq!(AluOp::Shr.eval(-8, 1), Some(((-8i64) as u64 >> 1) as i64));
        assert_eq!(AluOp::Min.eval(3, -2), Some(-2));
        assert_eq!(AluOp::Max.eval(3, -2), Some(3));
    }

    #[test]
    fn alu_wrapping() {
        assert_eq!(AluOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
        assert_eq!(AluOp::Mul.eval(i64::MAX, 2), Some(-2));
    }

    #[test]
    fn shift_amounts_masked() {
        assert_eq!(AluOp::Shl.eval(1, 64), Some(1));
        assert_eq!(AluOp::Shl.eval(1, 65), Some(2));
    }

    #[test]
    fn cond_eval_and_negate() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(c.eval(a, b), !c.negate().eval(a, b), "{c:?} ({a},{b})");
            }
        }
    }

    #[test]
    fn inst_memory_classification() {
        let m = MemRef::frame(8, AccessSize::B8);
        let load = Inst::Mov { dst: Reg(0), src: Operand::Mem(m) };
        let store = Inst::Store { addr: m, src: Operand::Imm(1) };
        let alu_mem =
            Inst::Alu { op: AluOp::Add, dst: Reg(0), a: Operand::Reg(Reg(0)), b: Operand::Mem(m) };
        let pure = Inst::Mov { dst: Reg(0), src: Operand::Imm(3) };
        assert!(load.mem_read().is_some() && load.mem_write().is_none());
        assert!(store.mem_write().is_some() && store.mem_read().is_none());
        assert!(alu_mem.touches_memory());
        assert!(!pure.touches_memory());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jmp(BlockId(3)).successors(), vec![BlockId(3)]);
        let br = Terminator::Br {
            cond: Cond::Lt,
            a: Operand::Imm(0),
            b: Operand::Imm(1),
            taken: BlockId(1),
            fallthrough: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        let call =
            Terminator::Call { callee: FuncId(7), args: vec![], ret_to: BlockId(9), dst: None };
        assert_eq!(call.successors(), vec![BlockId(9)]);
        assert!(Terminator::Ret { val: None }.successors().is_empty());
    }

    #[test]
    fn switch_successors_dedup_adjacent() {
        let sw = Terminator::Switch {
            val: Operand::Imm(0),
            base: 0,
            targets: vec![BlockId(1), BlockId(1), BlockId(2)],
            default: BlockId(2),
        };
        assert_eq!(sw.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn access_size_bytes() {
        assert_eq!(AccessSize::B1.bytes(), 1);
        assert_eq!(AccessSize::B2.bytes(), 2);
        assert_eq!(AccessSize::B4.bytes(), 4);
        assert_eq!(AccessSize::B8.bytes(), 8);
    }
}
