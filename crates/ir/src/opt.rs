//! The TFIR optimizer: levels `O0`–`O3` modelling the gcc optimization
//! sweep of the paper's correlation study (Section IV).
//!
//! | Level | Passes |
//! |-------|--------|
//! | `O0`  | none — builder output (every variable in a frame slot) |
//! | `O1`  | block-local store→load forwarding + dead-store elimination |
//! | `O2`  | `O1` + whole-function promotion of non-address-taken frame slots to registers |
//! | `O3`  | `O2` + self-loop unrolling + compare-chain → jump-table conversion |
//!
//! The passes reproduce the paper's observed artefacts: `O0` inflates memory
//! traffic (a load/store per variable access), `O2`/`O3` remove traffic the
//! SIMT reference binary still performs, and `O3`'s unrolling/jump-tables
//! perturb and *reduce* control divergence in the trace, causing the
//! analyzer to overestimate SIMT efficiency exactly as reported.

use crate::ids::Reg;
use crate::inst::{AccessSize, Base, Inst, MemRef, Operand, Terminator};
use crate::program::{Function, Program};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Compiler optimization level applied to a TFIR program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization (builder output).
    O0,
    /// Store→load forwarding and dead-store elimination within blocks.
    O1,
    /// `O1` plus whole-function register promotion of frame slots.
    O2,
    /// `O2` plus loop unrolling and jump-table conversion.
    O3,
}

impl OptLevel {
    /// All levels, in ascending aggressiveness.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

    /// Applies this level's pass pipeline, returning the optimized program.
    ///
    /// # Panics
    /// Panics if a pass produces an invalid program (internal bug).
    pub fn apply(self, program: &Program) -> Program {
        let mut p = program.clone();
        if self >= OptLevel::O1 {
            for f in p.functions_mut() {
                store_load_forward(f);
            }
        }
        if self >= OptLevel::O2 {
            for f in p.functions_mut() {
                promote_slots(f);
            }
        }
        if self >= OptLevel::O3 {
            for f in p.functions_mut() {
                unroll_self_loops(f, 2);
                unroll_rotated_loops(f);
                convert_jump_tables(f);
            }
        }
        p.validate().expect("optimizer produced an invalid program");
        p
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O1 => write!(f, "O1"),
            OptLevel::O2 => write!(f, "O2"),
            OptLevel::O3 => write!(f, "O3"),
        }
    }
}

/// Byte ranges of the frame whose address escapes (via `Lea` or indexed
/// frame references). Slots inside these ranges must stay in memory.
fn aliased_frame_ranges(f: &Function) -> Vec<(i64, i64)> {
    fn note(ranges: &mut Vec<(i64, i64)>, m: &MemRef) {
        if let Base::Frame = m.base {
            if m.index.is_some() {
                // Indexed access: anything at or above the base displacement
                // may be touched.
                ranges.push((m.disp, i64::MAX));
            }
        }
    }
    let mut ranges = Vec::new();
    for b in &f.blocks {
        for inst in &b.insts {
            if let Inst::Lea { addr, .. } = inst {
                if matches!(addr.base, Base::Frame) {
                    // Taking a frame address aliases the whole frame
                    // conservatively (pointer arithmetic may roam).
                    ranges.push((0, i64::MAX));
                }
            }
            if let Some(m) = inst.mem_read() {
                note(&mut ranges, m);
            }
            if let Some(m) = inst.mem_write() {
                note(&mut ranges, m);
            }
        }
        if let Some(m) = b.term.mem_read() {
            note(&mut ranges, m);
        }
    }
    ranges
}

fn slot_aliased(ranges: &[(i64, i64)], disp: i64, size: u64) -> bool {
    let end = disp + size as i64;
    ranges.iter().any(|&(lo, hi)| disp < hi && lo < end)
}

/// Identifies a direct (non-indexed) frame slot.
fn direct_frame_slot(m: &MemRef) -> Option<(i64, AccessSize)> {
    if matches!(m.base, Base::Frame) && m.index.is_none() {
        Some((m.disp, m.size))
    } else {
        None
    }
}

// --------------------------------------------------------------------------
// O1: block-local store→load forwarding + dead-store elimination
// --------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Known {
    val: Operand, // Reg or Imm only
    store_idx: Option<usize>,
    loaded_since: bool,
    size: AccessSize,
}

/// Forwards frame-slot stores to later loads within each block and deletes
/// stores overwritten before any read. Only non-aliased slots participate.
/// Returns whether anything changed.
pub fn store_load_forward(f: &mut Function) -> bool {
    let ranges = aliased_frame_ranges(f);
    let mut changed = false;
    for b in &mut f.blocks {
        let mut known: HashMap<i64, Known> = HashMap::new();
        let mut dead: HashSet<usize> = HashSet::new();

        let invalidate_reg = |known: &mut HashMap<i64, Known>, r: Reg| {
            known.retain(|_, k| k.val != Operand::Reg(r));
        };
        let rewrite = |known: &HashMap<i64, Known>, op: &mut Operand, changed: &mut bool| {
            if let Operand::Mem(m) = *op {
                if let Some((disp, size)) = direct_frame_slot(&m) {
                    if let Some(k) = known.get(&disp) {
                        if k.size == size {
                            *op = k.val;
                            *changed = true;
                        }
                    }
                }
            }
        };

        for (i, inst) in b.insts.iter_mut().enumerate() {
            match inst {
                Inst::Mov { dst, src } => {
                    // Forward into the source first.
                    if let Operand::Mem(m) = *src {
                        if let Some((disp, size)) = direct_frame_slot(&m) {
                            if !slot_aliased(&ranges, disp, size.bytes()) {
                                if let Some(k) = known.get_mut(&disp) {
                                    if k.size == size {
                                        *src = k.val;
                                        k.loaded_since = true;
                                        changed = true;
                                    }
                                } else {
                                    // A load leaves the slot's value in dst.
                                    let dst = *dst;
                                    invalidate_reg(&mut known, dst);
                                    known.insert(
                                        disp,
                                        Known {
                                            val: Operand::Reg(dst),
                                            store_idx: None,
                                            loaded_since: true,
                                            size,
                                        },
                                    );
                                    continue;
                                }
                            } else if let Some(k) = known.get_mut(&disp) {
                                k.loaded_since = true;
                            }
                        }
                    }
                    invalidate_reg(&mut known, *dst);
                }
                Inst::Alu { dst, a, b: bb, .. } => {
                    rewrite(&known, a, &mut changed);
                    rewrite(&known, bb, &mut changed);
                    // Indexed frame reads inside the aliased region count as
                    // loads of everything (conservative).
                    invalidate_reg(&mut known, *dst);
                }
                Inst::Store { addr, src } => {
                    rewrite(&known, src, &mut changed);
                    if let Some((disp, size)) = direct_frame_slot(addr) {
                        if !slot_aliased(&ranges, disp, size.bytes()) {
                            if let Some(prev) = known.get(&disp) {
                                if let Some(pi) = prev.store_idx {
                                    if !prev.loaded_since && prev.size == size {
                                        dead.insert(pi);
                                        changed = true;
                                    }
                                }
                            }
                            let val = match *src {
                                Operand::Reg(_) | Operand::Imm(_) => Some(*src),
                                Operand::Mem(_) => None,
                            };
                            if let Some(val) = val {
                                known.insert(
                                    disp,
                                    Known { val, store_idx: Some(i), loaded_since: false, size },
                                );
                            } else {
                                known.remove(&disp);
                            }
                        }
                    }
                }
                Inst::Lea { dst, .. } | Inst::Alloc { dst, .. } => {
                    invalidate_reg(&mut known, *dst);
                }
                Inst::Free { .. } | Inst::Io { .. } | Inst::Nop => {}
            }
        }

        // The terminator may read a slot; rewrite it too (reads keep the
        // final store live, which is already guaranteed: only *overwritten*
        // stores were marked dead).
        match &mut b.term {
            Terminator::Br { a, b: bb, .. } => {
                rewrite(&known, a, &mut changed);
                rewrite(&known, bb, &mut changed);
            }
            Terminator::Switch { val, .. } => rewrite(&known, val, &mut changed),
            Terminator::Ret { val: Some(v) } => rewrite(&known, v, &mut changed),
            _ => {}
        }

        if !dead.is_empty() {
            let mut idx = 0usize;
            b.insts.retain(|_| {
                let keep = !dead.contains(&idx);
                idx += 1;
                keep
            });
        }
    }
    changed
}

// --------------------------------------------------------------------------
// O2: whole-function register promotion
// --------------------------------------------------------------------------

/// Promotes every non-aliased, consistently-sized frame slot to a fresh
/// register. Sound because frames are private per activation, registers are
/// zero-initialized like frame memory, and non-address-taken slots cannot be
/// reached through pointers.
pub fn promote_slots(f: &mut Function) -> usize {
    let ranges = aliased_frame_ranges(f);

    // Gather candidate slots and reject mixed-size access patterns.
    let mut sizes: HashMap<i64, Option<AccessSize>> = HashMap::new();
    let consider = |m: &MemRef, sizes: &mut HashMap<i64, Option<AccessSize>>| {
        if let Some((disp, size)) = direct_frame_slot(m) {
            sizes
                .entry(disp)
                .and_modify(|e| {
                    if *e != Some(size) {
                        *e = None;
                    }
                })
                .or_insert(Some(size));
        }
    };
    for b in &f.blocks {
        for inst in &b.insts {
            if let Some(m) = inst.mem_read() {
                consider(m, &mut sizes);
            }
            if let Some(m) = inst.mem_write() {
                consider(m, &mut sizes);
            }
        }
        if let Some(m) = b.term.mem_read() {
            consider(m, &mut sizes);
        }
    }

    let mut promoted: HashMap<i64, Reg> = HashMap::new();
    let mut next = f.reg_count;
    for (&disp, &size) in &sizes {
        let Some(size) = size else { continue };
        if slot_aliased(&ranges, disp, size.bytes()) {
            continue;
        }
        promoted.insert(disp, Reg(next));
        next += 1;
    }
    if promoted.is_empty() {
        return 0;
    }
    f.reg_count = next;

    let swap = |op: &mut Operand| {
        if let Operand::Mem(m) = *op {
            if let Some((disp, _)) = direct_frame_slot(&m) {
                if let Some(&r) = promoted.get(&disp) {
                    *op = Operand::Reg(r);
                }
            }
        }
    };

    for b in &mut f.blocks {
        for inst in &mut b.insts {
            match inst {
                Inst::Mov { src, .. } => swap(src),
                Inst::Alu { a, b, .. } => {
                    swap(a);
                    swap(b);
                }
                Inst::Store { addr, src } => {
                    if let Some((disp, _)) = direct_frame_slot(addr) {
                        if let Some(&r) = promoted.get(&disp) {
                            // Store becomes a register move.
                            *inst = Inst::Mov { dst: r, src: *src };
                            continue;
                        }
                    }
                    swap(src);
                }
                _ => {}
            }
        }
        match &mut b.term {
            Terminator::Br { a, b, .. } => {
                swap(a);
                swap(b);
            }
            Terminator::Switch { val, .. } => swap(val),
            Terminator::Ret { val: Some(v) } => swap(v),
            _ => {}
        }
    }
    promoted.len()
}

// --------------------------------------------------------------------------
// O3: self-loop unrolling
// --------------------------------------------------------------------------

/// Unrolls single-block self-loops by `factor`, chaining `factor` body
/// copies with per-copy exit checks. Reduces per-iteration visits to the
/// header block, perturbing the dynamic block stream relative to lower
/// optimization levels (the paper's O3 trace artefact).
pub fn unroll_self_loops(f: &mut Function, factor: u32) -> usize {
    assert!(factor >= 2, "unroll factor must be at least 2");
    let mut unrolled = 0;
    let n = f.blocks.len();
    for b_idx in 0..n {
        let (is_self_loop, exits_on_taken) = match &f.blocks[b_idx].term {
            Terminator::Br { taken, fallthrough, .. } => {
                if taken.0 as usize == b_idx && fallthrough.0 as usize != b_idx {
                    (true, false)
                } else if fallthrough.0 as usize == b_idx && taken.0 as usize != b_idx {
                    (true, true)
                } else {
                    (false, false)
                }
            }
            _ => (false, false),
        };
        if !is_self_loop || f.blocks[b_idx].insts.is_empty() {
            continue;
        }
        let _ = exits_on_taken;
        // Chain factor-1 copies: B -> C1 -> ... -> C_{f-1} -> B, each copy
        // keeping the original exit edge.
        let mut loop_target = crate::ids::BlockId(b_idx as u32);
        for _ in 1..factor {
            let mut copy = f.blocks[b_idx].clone();
            let new_id = crate::ids::BlockId(f.blocks.len() as u32);
            // The copy loops back to the original header.
            redirect_self_edge(&mut copy.term, b_idx, loop_target);
            f.blocks.push(copy);
            loop_target = new_id;
        }
        // The original header now continues into the last-created copy:
        // rebuild the chain so B -> C_{last} -> ... -> B.
        redirect_self_edge_at(f, b_idx, loop_target);
        unrolled += 1;
    }
    unrolled
}

fn redirect_self_edge(term: &mut Terminator, self_idx: usize, to: crate::ids::BlockId) {
    if let Terminator::Br { taken, fallthrough, .. } = term {
        if taken.0 as usize == self_idx {
            *taken = to;
        }
        if fallthrough.0 as usize == self_idx {
            *fallthrough = to;
        }
    }
}

fn redirect_self_edge_at(f: &mut Function, b_idx: usize, to: crate::ids::BlockId) {
    let term = &mut f.blocks[b_idx].term;
    redirect_self_edge(term, b_idx, to);
}

/// Unrolls the classic two-block rotated loop produced by structured
/// builders — a header `H: … br cond ? B : E` whose body `B` ends with
/// `jmp H` — by duplicating the pair: `B` now jumps to a copy `H2 → B2 →
/// H`, halving dynamic visits to each header block per two iterations.
/// Semantics are preserved (each copy keeps the exit check); the dynamic
/// block stream changes, which is exactly the O3 trace artefact the
/// correlation study measures.
pub fn unroll_rotated_loops(f: &mut Function) -> usize {
    use crate::ids::BlockId;
    let mut count = 0;
    let n = f.blocks.len();
    for h in 0..n {
        let Terminator::Br { taken, fallthrough, .. } = f.blocks[h].term else { continue };
        let mut unrolled_here = false;
        for body in [taken, fallthrough] {
            let bi = body.0 as usize;
            if bi == h || unrolled_here {
                continue;
            }
            let loops_back = matches!(f.blocks[bi].term, Terminator::Jmp(t) if t.0 as usize == h);
            if !loops_back || f.blocks[bi].insts.is_empty() {
                continue;
            }
            let h2 = BlockId(f.blocks.len() as u32);
            let b2 = BlockId(f.blocks.len() as u32 + 1);
            // H2 is H with its body edge redirected to B2.
            let mut hcopy = f.blocks[h].clone();
            if let Terminator::Br { taken, fallthrough, .. } = &mut hcopy.term {
                if *taken == body {
                    *taken = b2;
                }
                if *fallthrough == body {
                    *fallthrough = b2;
                }
            }
            // B2 is B unchanged (still jumps to the original H).
            let bcopy = f.blocks[bi].clone();
            f.blocks.push(hcopy);
            f.blocks.push(bcopy);
            // The original body now continues into the copied header.
            f.blocks[bi].term = Terminator::Jmp(h2);
            count += 1;
            unrolled_here = true;
        }
    }
    count
}

// --------------------------------------------------------------------------
// O3: compare-chain → jump-table conversion
// --------------------------------------------------------------------------

/// Resolves an operand through leading `Mov` copies in `insts` to its root.
fn root_operand(insts: &[Inst], op: Operand) -> Operand {
    let mut cur = op;
    // Walk backwards through the block's moves.
    for inst in insts.iter().rev() {
        if let Inst::Mov { dst, src } = inst {
            if cur == Operand::Reg(*dst) {
                cur = *src;
            }
        }
    }
    cur
}

/// Converts chains of `if (x == k0) … else if (x == k1) …` blocks into a
/// single [`Terminator::Switch`] jump table, as `gcc -O3` does for dense
/// switch statements. Chain links must be empty apart from `Mov`
/// instructions feeding the comparison, and all comparisons must resolve to
/// the same root operand with dense constants.
pub fn convert_jump_tables(f: &mut Function) -> usize {
    let mut converted = 0;
    let n = f.blocks.len();
    'outer: for head in 0..n {
        // Collect the chain starting at `head`.
        let mut cases: Vec<(i64, crate::ids::BlockId)> = Vec::new();
        let mut cur = head;
        let mut root: Option<Operand> = None;
        let default;
        loop {
            let b = &f.blocks[cur];
            if cur != head && !b.insts.iter().all(|i| matches!(i, Inst::Mov { .. })) {
                continue 'outer;
            }
            match &b.term {
                Terminator::Br { cond: crate::inst::Cond::Eq, a, b: bb, taken, fallthrough } => {
                    let (val_op, key) = match (a, bb) {
                        (x, Operand::Imm(k)) => (*x, *k),
                        (Operand::Imm(k), x) => (*x, *k),
                        _ => continue 'outer,
                    };
                    let r = root_operand(&b.insts, val_op);
                    match &root {
                        None => root = Some(r),
                        Some(existing) if *existing == r => {}
                        _ => continue 'outer,
                    }
                    if cases.iter().any(|(k, _)| *k == key) {
                        continue 'outer;
                    }
                    cases.push((key, *taken));
                    let next = fallthrough.0 as usize;
                    if next == head || cases.len() > 64 {
                        continue 'outer;
                    }
                    // Chain continues if the fallthrough looks like another
                    // link; otherwise it is the default.
                    let fb = &f.blocks[next];
                    let looks_like_link =
                        matches!(fb.term, Terminator::Br { cond: crate::inst::Cond::Eq, .. })
                            && fb.insts.iter().all(|i| matches!(i, Inst::Mov { .. }));
                    if looks_like_link && cases.len() < 64 {
                        cur = next;
                        continue;
                    }
                    default = *fallthrough;
                    break;
                }
                _ => continue 'outer,
            }
        }
        if cases.len() < 3 {
            continue;
        }
        let min = cases.iter().map(|(k, _)| *k).min().expect("nonempty");
        let max = cases.iter().map(|(k, _)| *k).max().expect("nonempty");
        let span = (max - min) as usize + 1;
        if span > 128 {
            continue; // too sparse for a table
        }
        let mut targets = vec![default; span];
        for (k, t) in &cases {
            targets[(k - min) as usize] = *t;
        }
        let root = root.expect("chain had at least one compare");
        f.blocks[head].term = Terminator::Switch { val: root, base: min, targets, default };
        converted += 1;
    }
    converted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::BlockId;
    use crate::inst::{AluOp, Cond};

    fn count_mem_insts(p: &Program) -> usize {
        p.functions()
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.insts.iter())
            .filter(|i| i.touches_memory())
            .count()
    }

    fn sample_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("out", 8 * 128);
        pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let acc = fb.var(8);
            fb.store_var(acc, 0i64);
            fb.for_range(0i64, 16i64, 1, |fb, i| {
                let a = fb.load_var(acc);
                let s = fb.alu(AluOp::Add, a, i);
                fb.store_var(acc, s);
            });
            let fin = fb.load_var(acc);
            let dst = fb.global_ref(g, Operand::Reg(tid), 8);
            fb.store(dst, fin);
            fb.ret(None);
        });
        pb.build().unwrap()
    }

    #[test]
    fn o1_reduces_memory_instructions() {
        let p = sample_program();
        let o1 = OptLevel::O1.apply(&p);
        assert!(count_mem_insts(&o1) < count_mem_insts(&p));
    }

    #[test]
    fn o2_removes_nearly_all_frame_traffic() {
        let p = sample_program();
        let o2 = OptLevel::O2.apply(&p);
        let frame_ops = o2
            .functions()
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| b.insts.iter())
            .filter(|i| {
                i.mem_read().map(|m| m.is_frame()).unwrap_or(false)
                    || i.mem_write().map(|m| m.is_frame()).unwrap_or(false)
            })
            .count();
        assert_eq!(frame_ops, 0, "all direct slots should be promoted");
    }

    #[test]
    fn opt_levels_are_ordered() {
        assert!(OptLevel::O0 < OptLevel::O1);
        assert!(OptLevel::O2 < OptLevel::O3);
        assert_eq!(OptLevel::ALL.len(), 4);
    }

    #[test]
    fn promotion_respects_address_taken_slots() {
        let mut pb = ProgramBuilder::new();
        pb.function("k", 0, |fb| {
            let v = fb.var(8);
            fb.store_var(v, 7i64);
            let p = fb.lea(v.mem());
            let m = fb.ptr_ref(p, Operand::Imm(0), 8, 0);
            let lv = fb.load(m);
            fb.ret(Some(Operand::Reg(lv)));
        });
        let p = pb.build().unwrap();
        let o2 = OptLevel::O2.apply(&p);
        // The store must survive: its address escaped via Lea.
        let stores = o2.functions()[0]
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn dead_store_eliminated() {
        let mut pb = ProgramBuilder::new();
        pb.function("k", 0, |fb| {
            let v = fb.var(8);
            fb.store_var(v, 1i64);
            fb.store_var(v, 2i64); // kills the first store
            let r = fb.load_var(v);
            fb.ret(Some(Operand::Reg(r)));
        });
        let p = pb.build().unwrap();
        let o1 = OptLevel::O1.apply(&p);
        let stores = o1.functions()[0]
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert_eq!(stores, 1);
    }

    #[test]
    fn store_not_killed_when_loaded_between() {
        let mut pb = ProgramBuilder::new();
        pb.function("k", 0, |fb| {
            let v = fb.var(8);
            fb.store_var(v, 1i64);
            let a = fb.load_var(v);
            fb.store_var(v, 2i64);
            fb.ret(Some(Operand::Reg(a)));
        });
        let p = pb.build().unwrap();
        let o1 = OptLevel::O1.apply(&p);
        // Forwarding may rewrite the load, but both stores remain only if the
        // first was observed; after forwarding the load reads the stored
        // value directly, making the first store dead-on-arrival — the pass
        // must still keep it because `loaded_since` was set.
        let stores = o1.functions()[0]
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|i| matches!(i, Inst::Store { .. }))
            .count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn unroll_duplicates_self_loop() {
        let mut pb = ProgramBuilder::new();
        pb.function("k", 1, |fb| {
            let n = fb.arg(0);
            // hand-built self-loop: body and latch in one block
            let loop_b = fb.new_block();
            let exit = fb.new_block();
            let i = fb.reg();
            fb.mov_into(i, 0i64);
            fb.jmp(loop_b);
            fb.switch_to(loop_b);
            fb.alu_into(i, AluOp::Add, i, 1i64);
            fb.br(Cond::Lt, i, n, loop_b, exit);
            fb.switch_to(exit);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let before = p.functions()[0].blocks.len();
        let o3 = OptLevel::O3.apply(&p);
        assert!(o3.functions()[0].blocks.len() > before);
    }

    #[test]
    fn rotated_loop_unrolled_at_o3() {
        let mut pb = ProgramBuilder::new();
        pb.function("k", 1, |fb| {
            let n = fb.arg(0);
            fb.for_range(0i64, Operand::Reg(n), 1, |fb, _| {
                fb.nop();
            });
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let before = p.functions()[0].blocks.len();
        let o3 = OptLevel::O3.apply(&p);
        assert!(
            o3.functions()[0].blocks.len() >= before + 2,
            "for_range loop should be rotated-unrolled"
        );
    }

    #[test]
    fn jump_table_conversion_on_eq_chain() {
        let mut pb = ProgramBuilder::new();
        pb.function("k", 1, |fb| {
            let x = fb.arg(0);
            let out = fb.var(8);
            fb.if_then_else(
                Cond::Eq,
                x,
                0i64,
                |fb| fb.store_var(out, 10i64),
                |fb| {
                    fb.if_then_else(
                        Cond::Eq,
                        x,
                        1i64,
                        |fb| fb.store_var(out, 20i64),
                        |fb| {
                            fb.if_then_else(
                                Cond::Eq,
                                x,
                                2i64,
                                |fb| fb.store_var(out, 30i64),
                                |fb| fb.store_var(out, 40i64),
                            );
                        },
                    );
                },
            );
            let r = fb.load_var(out);
            fb.ret(Some(Operand::Reg(r)));
        });
        let p = pb.build().unwrap();
        let o3 = OptLevel::O3.apply(&p);
        let has_switch =
            o3.functions()[0].blocks.iter().any(|b| matches!(b.term, Terminator::Switch { .. }));
        assert!(has_switch, "eq-chain should become a jump table at O3");
    }

    #[test]
    fn o0_is_identity() {
        let p = sample_program();
        let o0 = OptLevel::O0.apply(&p);
        assert_eq!(p, o0);
    }

    #[test]
    fn root_operand_resolution() {
        let insts = vec![
            Inst::Mov { dst: Reg(1), src: Operand::Reg(Reg(0)) },
            Inst::Mov { dst: Reg(2), src: Operand::Reg(Reg(1)) },
        ];
        assert_eq!(root_operand(&insts, Operand::Reg(Reg(2))), Operand::Reg(Reg(0)));
        assert_eq!(root_operand(&insts, Operand::Imm(5)), Operand::Imm(5));
    }

    #[test]
    fn unreachable_chain_blocks_left_in_place() {
        // Conversion must not remove blocks (ids stay stable).
        let mut pb = ProgramBuilder::new();
        pb.function("k", 1, |fb| {
            let x = fb.arg(0);
            fb.if_then_else(
                Cond::Eq,
                x,
                0i64,
                |fb| fb.nop(),
                |fb| {
                    fb.if_then_else(
                        Cond::Eq,
                        x,
                        1i64,
                        |fb| fb.nop(),
                        |fb| {
                            fb.if_then_else(Cond::Eq, x, 2i64, |fb| fb.nop(), |fb| fb.nop());
                        },
                    );
                },
            );
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let before = p.functions()[0].blocks.len();
        let o3 = OptLevel::O3.apply(&p);
        assert_eq!(o3.functions()[0].blocks.len(), before);
        let _ = BlockId(0);
    }
}
