//! Human-readable disassembly of TFIR programs.

use crate::inst::{Base, Inst, MemRef, Operand, Terminator};
use crate::program::{Function, Program};
use std::fmt;
use std::fmt::Write as _;

/// Wrapper whose `Display` renders a program as assembly-style text.
///
/// ```
/// use threadfuser_ir::{ProgramBuilder, pretty::Disasm};
/// let mut pb = ProgramBuilder::new();
/// pb.function("f", 0, |fb| fb.ret(None));
/// let p = pb.build().unwrap();
/// let text = Disasm(&p).to_string();
/// assert!(text.contains("fn f"));
/// ```
#[derive(Debug)]
pub struct Disasm<'a>(pub &'a Program);

fn fmt_mem(m: &MemRef) -> String {
    let mut s = String::from("[");
    match m.base {
        Base::None => {}
        Base::Reg(r) => {
            let _ = write!(s, "{r}");
        }
        Base::Frame => s.push_str("fp"),
        Base::Global(g) => {
            let _ = write!(s, "{g}");
        }
    }
    if let Some((r, scale)) = m.index {
        let _ = write!(s, "+{r}*{scale}");
    }
    if m.disp != 0 {
        let _ = write!(s, "{:+}", m.disp);
    }
    let _ = write!(s, "]{{{}}}", m.size.bytes());
    s
}

fn fmt_op(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => v.to_string(),
        Operand::Mem(m) => fmt_mem(m),
    }
}

fn fmt_inst(i: &Inst) -> String {
    match i {
        Inst::Alu { op, dst, a, b } => {
            format!("{dst} = {:?}({}, {})", op, fmt_op(a), fmt_op(b)).to_lowercase()
        }
        Inst::Mov { dst, src } => format!("{dst} = {}", fmt_op(src)),
        Inst::Store { addr, src } => format!("{} = {}", fmt_mem(addr), fmt_op(src)),
        Inst::Lea { dst, addr } => format!("{dst} = lea {}", fmt_mem(addr)),
        Inst::Alloc { dst, size } => format!("{dst} = alloc({})", fmt_op(size)),
        Inst::Free { addr } => format!("free({})", fmt_op(addr)),
        Inst::Io { kind, cost } => format!("io.{kind:?}({cost})").to_lowercase(),
        Inst::Nop => "nop".to_string(),
    }
}

fn fmt_term(t: &Terminator) -> String {
    match t {
        Terminator::Jmp(b) => format!("jmp {b}"),
        Terminator::Br { cond, a, b, taken, fallthrough } => {
            format!("br {:?}({}, {}) ? {taken} : {fallthrough}", cond, fmt_op(a), fmt_op(b))
                .to_lowercase()
        }
        Terminator::Switch { val, base, targets, default } => {
            let ts: Vec<String> = targets.iter().map(|t| t.to_string()).collect();
            format!("switch {} base={base} [{}] default {default}", fmt_op(val), ts.join(", "))
        }
        Terminator::Call { callee, args, ret_to, dst } => {
            let a: Vec<String> = args.iter().map(fmt_op).collect();
            match dst {
                Some(d) => format!("{d} = call {callee}({}) -> {ret_to}", a.join(", ")),
                None => format!("call {callee}({}) -> {ret_to}", a.join(", ")),
            }
        }
        Terminator::Ret { val } => match val {
            Some(v) => format!("ret {}", fmt_op(v)),
            None => "ret".to_string(),
        },
        Terminator::Acquire { lock, next } => format!("acquire {} -> {next}", fmt_op(lock)),
        Terminator::Release { lock, next } => format!("release {} -> {next}", fmt_op(lock)),
        Terminator::Barrier { id, next } => format!("barrier #{id} -> {next}"),
    }
}

fn fmt_function(out: &mut fmt::Formatter<'_>, idx: usize, f: &Function) -> fmt::Result {
    writeln!(
        out,
        "fn {} (fn{idx}, params={}, regs={}, frame={}B):",
        f.name, f.params, f.reg_count, f.frame_size
    )?;
    for (bi, b) in f.blocks.iter().enumerate() {
        writeln!(out, "  bb{bi}:")?;
        for i in &b.insts {
            writeln!(out, "    {}", fmt_inst(i))?;
        }
        writeln!(out, "    {}", fmt_term(&b.term))?;
    }
    Ok(())
}

impl fmt::Display for Disasm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (gi, g) in self.0.globals().iter().enumerate() {
            writeln!(f, "global g{gi} {} ({}B)", g.name, g.size)?;
        }
        for (fi, func) in self.0.functions().iter().enumerate() {
            fmt_function(f, fi, func)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::inst::AluOp;

    #[test]
    fn disassembly_covers_control_and_sync_terminators() {
        use crate::inst::Cond;
        let mut pb = ProgramBuilder::new();
        let lock = pb.global("lock", 8);
        pb.function("f", 1, |fb| {
            let a = fb.arg(0);
            let l = fb.lea(crate::inst::MemRef::global(lock, None, 0, crate::inst::AccessSize::B8));
            fb.acquire(crate::inst::Operand::Reg(l));
            fb.release(crate::inst::Operand::Reg(l));
            fb.barrier(3);
            let c0 = fb.new_block();
            let c1 = fb.new_block();
            let join = fb.new_block();
            fb.switch(a, 0, vec![c0, c1], join);
            fb.switch_to(c0);
            fb.jmp(join);
            fb.switch_to(c1);
            fb.if_then(Cond::Ne, a, 0i64, |fb| fb.nop());
            fb.jmp(join);
            fb.switch_to(join);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let text = Disasm(&p).to_string();
        for needle in ["acquire", "release", "barrier #3", "switch", "lea", "br ne"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn disassembly_mentions_all_parts() {
        let mut pb = ProgramBuilder::new();
        let g = pb.global("table", 64);
        pb.function("work", 1, |fb| {
            let t = fb.arg(0);
            let v = fb.alu(AluOp::Mul, t, 3i64);
            let m = fb.global_ref(g, Operand::Reg(t), 8);
            fb.store(m, v);
            fb.ret(Some(Operand::Reg(v)));
        });
        let p = pb.build().unwrap();
        let text = Disasm(&p).to_string();
        assert!(text.contains("global g0 table"));
        assert!(text.contains("fn work"));
        assert!(text.contains("mul"));
        assert!(text.contains("ret"));
    }
}
