//! Typed identifiers for TFIR entities.
//!
//! Newtypes keep function, block, register, and global indices statically
//! distinct (C-NEWTYPE): a [`BlockId`] can never be passed where a [`FuncId`]
//! is expected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a function within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Index of a basic block within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// A virtual register within a function frame.
///
/// Every function owns its register file (frames are fully caller-saved by
/// construction), so registers never need spilling around calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u16);

/// Index of a global data object within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalId(pub u32);

/// Globally unique "address" of a basic block: the pair (function, block).
///
/// This is what the tracer records per executed block, playing the role of
/// the x86 code address a PIN trace would contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockAddr {
    /// Containing function.
    pub func: FuncId,
    /// Block within the function.
    pub block: BlockId,
}

impl BlockAddr {
    /// Creates a block address from a function/block pair.
    pub fn new(func: FuncId, block: BlockId) -> Self {
        Self { func, block }
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.func, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_addr_ordering_groups_by_function() {
        let a = BlockAddr::new(FuncId(0), BlockId(9));
        let b = BlockAddr::new(FuncId(1), BlockId(0));
        assert!(a < b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(FuncId(3).to_string(), "fn3");
        assert_eq!(BlockId(7).to_string(), "bb7");
        assert_eq!(Reg(2).to_string(), "r2");
        assert_eq!(BlockAddr::new(FuncId(1), BlockId(2)).to_string(), "fn1:bb2");
    }

    #[test]
    fn ids_round_trip_serde() {
        let addr = BlockAddr::new(FuncId(4), BlockId(5));
        let json = serde_json::to_string(&addr).unwrap();
        let back: BlockAddr = serde_json::from_str(&json).unwrap();
        assert_eq!(addr, back);
    }
}
