#![warn(missing_docs)]

//! # ThreadFuser IR (TFIR)
//!
//! A small CISC-flavoured register IR standing in for the x86 binaries the
//! ThreadFuser paper traces with Intel PIN. Instructions may carry one memory
//! operand (like x86), so the warp-trace generator's CISC→RISC decomposition
//! step is exercised exactly as in the paper.
//!
//! The crate provides:
//!
//! * the instruction set ([`Inst`], [`Terminator`], [`Operand`], [`MemRef`]),
//! * whole programs ([`Program`], [`Function`], [`BasicBlock`]) with
//!   validation,
//! * a [`ProgramBuilder`]/[`FunctionBuilder`] pair that emits *naive* code —
//!   every source-level variable lives in a stack-frame slot, as an
//!   unoptimized compiler would produce,
//! * static control-flow utilities ([`mod@cfg`]) including the generic immediate
//!   post-dominator (IPDOM) solver shared with the trace analyzer, and
//! * an optimizer ([`opt`]) with levels `O0`–`O3` modelling the gcc
//!   optimization sweep of the paper's correlation study (store-to-load
//!   forwarding, whole-function register promotion, loop unrolling,
//!   compare-chain → jump-table conversion).
//!
//! ## Example
//!
//! ```
//! use threadfuser_ir::{ProgramBuilder, Operand, AluOp};
//!
//! let mut pb = ProgramBuilder::new();
//! let data = pb.global("data", 1024);
//! pb.function("worker", 1, |fb| {
//!     let tid = fb.arg(0);
//!     let i = fb.var(8);
//!     fb.store_var(i, Operand::Reg(tid));
//!     let v = fb.load_var(i);
//!     let doubled = fb.alu(AluOp::Add, Operand::Reg(v), Operand::Reg(v));
//!     let dst = fb.global_ref(data, Operand::Reg(tid), 8);
//!     fb.store(dst, Operand::Reg(doubled));
//!     fb.ret(Some(Operand::Reg(doubled)));
//! });
//! let program = pb.build().expect("valid program");
//! assert_eq!(program.functions().len(), 1);
//! ```

pub mod builder;
pub mod cfg;
pub mod ids;
pub mod inst;
pub mod opt;
pub mod pretty;
pub mod program;

pub use builder::{FunctionBuilder, ProgramBuilder, Slot};
pub use cfg::{ipdom_of, ipdom_of_csr, FuncCfg};
pub use ids::{BlockAddr, BlockId, FuncId, GlobalId, Reg};
pub use inst::{AccessSize, AluOp, Base, Cond, Inst, IoKind, MemRef, Operand, Terminator};
pub use opt::OptLevel;
pub use program::{BasicBlock, Function, Global, Program, ValidateError};
