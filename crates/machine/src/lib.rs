#![warn(missing_docs)]

//! # ThreadFuser machine
//!
//! Execution substrates for the ThreadFuser framework:
//!
//! * [`Machine`] — the **MIMD multicore machine**: a deterministic
//!   round-robin interpreter running one TFIR kernel invocation per logical
//!   thread, with pthread-style mutexes, barriers, a shared heap, and
//!   per-thread stacks. The tracer attaches through [`ExecHook`] exactly as
//!   the paper's PIN tool attaches to an x86 process.
//! * [`LockstepMachine`] — the **warp-native lock-step executor**: the
//!   "SIMT hardware" ground truth the trace-based analyzer is correlated
//!   against (paper Fig. 5), complete with a hardware SIMT reconvergence
//!   stack and 32-byte-transaction coalescing.
//!
//! Both modes share one instruction executor ([`exec`]), guaranteeing
//! identical semantics on both sides of the correlation study.

pub mod exec;
pub mod heap;
pub mod hooks;
pub mod layout;
pub mod lockstep;
pub mod memory;
pub mod mimd;
pub mod predecode;

pub use exec::{ExecCtx, MemAccess, Next, Trap};
pub use heap::{Heap, HeapError};
pub use hooks::{ExecHook, NoopHook, SkipKind};
pub use layout::{segment_of, Segment};
pub use lockstep::{
    LockstepConfig, LockstepError, LockstepMachine, LockstepStats, SegmentMemStats,
};
pub use memory::Memory;
pub use mimd::{ExecEngine, Machine, MachineConfig, MachineError, RunStats, ThreadStats};
pub use predecode::ExecProgram;
