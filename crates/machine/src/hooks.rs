//! Instrumentation hooks — the PIN-callback equivalent.
//!
//! The MIMD machine invokes an [`ExecHook`] at the same points the
//! ThreadFuser PIN tool instruments: basic-block entry, per-instruction
//! memory accesses, call/return, synchronization primitives, and skipped
//! (I/O or lock-spin) regions. The tracer crate implements this trait to
//! build per-thread traces.

use threadfuser_ir::{BlockAddr, FuncId};

/// Why instructions were skipped rather than traced (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkipKind {
    /// Opaque I/O operation.
    Io,
    /// Busy-wait iterations on a contended mutex.
    LockSpin,
}

/// Callbacks fired during MIMD execution. All methods have empty defaults;
/// implement only what you need.
pub trait ExecHook {
    /// A thread is about to execute a basic block of `n_insts` dynamic
    /// instructions (body + terminator).
    fn on_block(&mut self, tid: u32, addr: BlockAddr, n_insts: u32) {
        let _ = (tid, addr, n_insts);
    }

    /// A memory access by instruction `inst_idx` of the current block
    /// (the terminator counts as index `n_insts - 1`).
    fn on_mem(&mut self, tid: u32, inst_idx: u32, addr: u64, size: u32, is_store: bool) {
        let _ = (tid, inst_idx, addr, size, is_store);
    }

    /// A call to `callee` (fired before the callee's entry block).
    fn on_call(&mut self, tid: u32, callee: FuncId) {
        let _ = (tid, callee);
    }

    /// A return from the current function.
    fn on_ret(&mut self, tid: u32) {
        let _ = tid;
    }

    /// A successful mutex acquisition.
    fn on_acquire(&mut self, tid: u32, lock: u64) {
        let _ = (tid, lock);
    }

    /// A mutex release.
    fn on_release(&mut self, tid: u32, lock: u64) {
        let _ = (tid, lock);
    }

    /// Arrival at (and eventual passage through) barrier `id`.
    fn on_barrier(&mut self, tid: u32, id: u32) {
        let _ = (tid, id);
    }

    /// `count` native instructions were skipped (not traced).
    fn on_skipped(&mut self, tid: u32, count: u64, kind: SkipKind) {
        let _ = (tid, count, kind);
    }

    /// The thread's kernel invocation finished.
    fn on_thread_end(&mut self, tid: u32) {
        let _ = tid;
    }
}

/// Hook that records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopHook;

impl ExecHook for NoopHook {}
