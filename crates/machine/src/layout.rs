//! Address-space layout of the simulated machine.
//!
//! The layout mirrors a conventional process image so the analyzer can
//! classify accesses by segment the way ThreadFuser does: stack accesses
//! map to SIMT *local* memory, everything else (globals + heap) to
//! *global* memory.

/// Base address of the global (static data) region.
pub const GLOBAL_BASE: u64 = 0x1000_0000;

/// Base address of the heap.
pub const HEAP_BASE: u64 = 0x4000_0000;

/// Heap capacity in bytes.
pub const HEAP_SIZE: u64 = 0x4000_0000;

/// Base address of the first thread stack.
pub const STACK_BASE: u64 = 0x1_0000_0000;

/// Per-thread stack capacity in bytes.
pub const STACK_SIZE: u64 = 1 << 20;

/// Memory segment classification used for divergence reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Per-thread stack (SIMT local space).
    Stack,
    /// Globals and heap (SIMT global space).
    Heap,
}

/// Classifies an address by segment.
pub fn segment_of(addr: u64) -> Segment {
    if addr >= STACK_BASE {
        Segment::Stack
    } else {
        Segment::Heap
    }
}

/// Top of thread `tid`'s stack (stacks grow downward from here).
pub fn stack_top(tid: u32) -> u64 {
    STACK_BASE + (tid as u64 + 1) * STACK_SIZE
}

/// Lowest valid address of thread `tid`'s stack.
pub fn stack_floor(tid: u32) -> u64 {
    STACK_BASE + tid as u64 * STACK_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_partition_the_space() {
        assert_eq!(segment_of(GLOBAL_BASE), Segment::Heap);
        assert_eq!(segment_of(HEAP_BASE + 100), Segment::Heap);
        assert_eq!(segment_of(STACK_BASE), Segment::Stack);
        assert_eq!(segment_of(stack_top(7) - 8), Segment::Stack);
    }

    #[test]
    fn stacks_do_not_overlap() {
        assert_eq!(stack_top(0), stack_floor(1));
        assert!(stack_floor(3) > stack_top(1));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn regions_do_not_overlap() {
        assert!(GLOBAL_BASE < HEAP_BASE);
        assert!(HEAP_BASE + HEAP_SIZE <= STACK_BASE);
    }
}
