//! Predecoded execution form of a TFIR program.
//!
//! [`ExecProgram`] is built once per [`Program`] and flattens every
//! function into one contiguous instruction array with a block-offset
//! table: operands are resolved to dense register indices and inline
//! immediates, global bases are baked to absolute addresses (the global
//! layout is a pure function of the program — see
//! [`crate::memory::global_layout`]), access widths are pre-expanded to
//! bytes, and callee entry metadata is attached to every call site. Both
//! interpreters (the MIMD machine and the lock-step executor) fetch from
//! this form instead of re-matching the nested `Program` enums on every
//! dynamic instruction.
//!
//! The artifact depends **only** on the program: any two builds over the
//! same (optimized) program are interchangeable, so callers cache it
//! behind `Arc` exactly like the analyzer's `AnalysisIndex` and share it
//! across machine runs. Execution semantics are bit-identical to the
//! legacy tree-walking path (`ExecCtx::exec_inst`/`eval_term`): the same
//! evaluation order, the same traps, the same recorded memory accesses.

use crate::exec::{CallArgs, ExecCtx, MemAccess, Next, Trap};
use crate::memory::global_layout;
use threadfuser_ir::{
    AluOp, Base, BlockId, Cond, FuncId, Inst, MemRef, Operand, Program, Reg, Terminator,
};
use threadfuser_obs::{Obs, Phase};

/// Sentinel register index meaning "no index register".
const NO_REG: u16 = u16::MAX;

/// Predecoded memory reference: base resolved (globals to absolute
/// addresses), width in bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PMem {
    base: PBase,
    index_reg: u16,
    scale: u8,
    size: u8,
    disp: i64,
}

#[derive(Debug, Clone, Copy)]
enum PBase {
    Zero,
    Reg(u16),
    Frame,
    Abs(u64),
}

/// Predecoded operand. Memory operands are boxed: they are rare (loads
/// and stores lower to the dedicated [`PInst::Load`]/[`PInst::Store`]
/// forms), and keeping `PVal` at 16 bytes keeps the flat instruction
/// array cache-dense.
#[derive(Debug, Clone)]
pub(crate) enum PVal {
    Reg(u16),
    Imm(i64),
    Mem(Box<PMem>),
}

/// Predecoded straight-line instruction.
///
/// The hot scalar forms (`AluRR`/`AluRI`/`MovR`/`MovI`) carry their
/// operands inline and are dispatched without touching the memory-access
/// machinery at all; `Load`/`Store` carry the resolved [`PMem`] inline.
/// The general `Alu` form remains for the rare x86-style instruction
/// with an embedded memory operand.
#[derive(Debug, Clone)]
pub(crate) enum PInst {
    /// `dst = a op b`, both registers.
    AluRR {
        op: AluOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// `dst = a op imm`.
    AluRI {
        op: AluOp,
        dst: u16,
        a: u16,
        b: i64,
    },
    Alu {
        op: AluOp,
        dst: u16,
        a: PVal,
        b: PVal,
    },
    MovR {
        dst: u16,
        src: u16,
    },
    MovI {
        dst: u16,
        src: i64,
    },
    /// Register load from memory (`Mov` with a memory source).
    Load {
        dst: u16,
        addr: PMem,
    },
    Store {
        addr: PMem,
        src: PVal,
    },
    Lea {
        dst: u16,
        addr: PMem,
    },
    Alloc {
        dst: u16,
        size: PVal,
    },
    Free {
        addr: PVal,
    },
    Io {
        cost: u32,
    },
    Nop,
}

impl PInst {
    /// Whether the instruction can record a memory access (mirrors
    /// `Inst::touches_memory` on the predecoded form).
    pub(crate) fn touches_memory(&self) -> bool {
        match self {
            PInst::Load { .. } | PInst::Store { .. } => true,
            PInst::Alu { a, b, .. } => matches!(a, PVal::Mem(_)) || matches!(b, PVal::Mem(_)),
            PInst::Alloc { size, .. } => matches!(size, PVal::Mem(_)),
            PInst::Free { addr } => matches!(addr, PVal::Mem(_)),
            PInst::AluRR { .. }
            | PInst::AluRI { .. }
            | PInst::MovR { .. }
            | PInst::MovI { .. }
            | PInst::Lea { .. }
            | PInst::Io { .. }
            | PInst::Nop => false,
        }
    }
}

/// Predecoded terminator with pre-resolved successors.
#[derive(Debug, Clone)]
pub(crate) enum PTerm {
    Jmp(BlockId),
    /// Register-register compare-and-branch, operands inline. Loop
    /// back-edges and `if` headers overwhelmingly compare two registers
    /// (or a register and an immediate, below), so these two forms decide
    /// nearly every block transition without touching [`PVal`].
    BrRR {
        cond: Cond,
        a: u16,
        b: u16,
        taken: BlockId,
        fallthrough: BlockId,
    },
    /// Register-immediate compare-and-branch, operands inline.
    BrRI {
        cond: Cond,
        a: u16,
        b: i64,
        taken: BlockId,
        fallthrough: BlockId,
    },
    Br {
        cond: Cond,
        a: PVal,
        b: PVal,
        taken: BlockId,
        fallthrough: BlockId,
    },
    Switch {
        val: PVal,
        base: i64,
        targets: Box<[BlockId]>,
        default: BlockId,
    },
    Call {
        callee: FuncId,
        args: Box<[PVal]>,
        ret_to: BlockId,
        dst: Option<Reg>,
    },
    Ret {
        val: Option<PVal>,
    },
    Acquire {
        lock: PVal,
        next: BlockId,
    },
    Release {
        lock: PVal,
        next: BlockId,
    },
    Barrier {
        id: u32,
        next: BlockId,
    },
}

impl PTerm {
    /// Whether evaluating the terminator can record a memory access.
    /// (Exercised by the equivalence tests; the interpreters learn the
    /// same fact from `eval_pterm`'s recorded accesses.)
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn touches_memory(&self) -> bool {
        let is_mem = |v: &PVal| matches!(v, PVal::Mem(_));
        match self {
            PTerm::BrRR { .. } | PTerm::BrRI { .. } => false,
            PTerm::Br { a, b, .. } => is_mem(a) || is_mem(b),
            PTerm::Switch { val, .. } => is_mem(val),
            PTerm::Ret { val: Some(v) } => is_mem(v),
            _ => false,
        }
    }
}

/// One predecoded basic block: a range into the flat instruction array
/// plus the terminator.
#[derive(Debug, Clone)]
pub(crate) struct ExecBlock {
    inst_start: u32,
    inst_end: u32,
    /// Dynamic length: body instructions plus the terminator.
    pub(crate) n_insts: u32,
    /// No body instruction records a memory access or skips I/O: the
    /// interpreter may run the body in a tight loop with no access
    /// buffer, no per-instruction hook dispatch, and batched counters.
    pub(crate) pure_body: bool,
    pub(crate) term: PTerm,
}

/// Per-function metadata and block-offset table entry.
#[derive(Debug, Clone)]
pub(crate) struct ExecFunc {
    block_base: u32,
    pub(crate) entry: BlockId,
    pub(crate) reg_count: u16,
    pub(crate) frame_size: u32,
}

/// The predecoded execution form of a whole program. Build it once with
/// [`ExecProgram::build`] (or [`ExecProgram::build_observed`] for a
/// `predecode` phase span), wrap it in an `Arc`, and hand it to every
/// machine over the same program via `MachineConfig::exec_program` /
/// `LockstepMachine::new_with_parts`.
#[derive(Debug)]
pub struct ExecProgram {
    funcs: Vec<ExecFunc>,
    blocks: Vec<ExecBlock>,
    insts: Vec<PInst>,
    n_globals: u32,
}

impl ExecProgram {
    /// Predecodes `program`.
    pub fn build(program: &Program) -> Self {
        let globals = global_layout(program);
        let mut funcs = Vec::with_capacity(program.functions().len());
        let mut blocks = Vec::new();
        let mut insts = Vec::new();
        for f in program.functions() {
            funcs.push(ExecFunc {
                block_base: blocks.len() as u32,
                entry: f.entry,
                reg_count: f.reg_count,
                frame_size: f.frame_size,
            });
            for b in &f.blocks {
                let inst_start = insts.len() as u32;
                insts.extend(b.insts.iter().map(|i| predecode_inst(i, &globals)));
                let body = &insts[inst_start as usize..];
                let pure_body =
                    body.iter().all(|i| !i.touches_memory() && !matches!(i, PInst::Io { .. }));
                blocks.push(ExecBlock {
                    inst_start,
                    inst_end: insts.len() as u32,
                    n_insts: b.len_with_term(),
                    pure_body,
                    term: predecode_term(&b.term, &globals),
                });
            }
        }
        ExecProgram { funcs, blocks, insts, n_globals: globals.len() as u32 }
    }

    /// Predecodes `program` under a [`Phase::Predecode`] span, reporting
    /// `predecoded_insts` / `predecoded_blocks` counters.
    pub fn build_observed(program: &Program, obs: &Obs) -> Self {
        let span = obs.span(Phase::Predecode);
        let exec = Self::build(program);
        obs.counter(Phase::Predecode, "predecoded_insts", exec.insts.len() as u64);
        obs.counter(Phase::Predecode, "predecoded_blocks", exec.blocks.len() as u64);
        span.finish();
        exec
    }

    /// Whether this artifact was predecoded from a program with the same
    /// shape (cheap sanity check for cached sharing; the invalidation
    /// rule is "depends only on the program").
    pub fn matches(&self, program: &Program) -> bool {
        self.funcs.len() == program.functions().len()
            && self.n_globals as usize == program.globals().len()
            && self.insts.len() as u64 + self.blocks.len() as u64 == program.static_inst_count()
    }

    /// Total predecoded static instructions (bodies plus terminators).
    pub fn static_inst_count(&self) -> u64 {
        self.insts.len() as u64 + self.blocks.len() as u64
    }

    #[inline]
    pub(crate) fn func(&self, f: FuncId) -> &ExecFunc {
        &self.funcs[f.0 as usize]
    }

    #[inline]
    pub(crate) fn block(&self, f: FuncId, b: BlockId) -> &ExecBlock {
        &self.blocks[(self.funcs[f.0 as usize].block_base + b.0) as usize]
    }

    #[inline]
    pub(crate) fn insts(&self, blk: &ExecBlock) -> &[PInst] {
        &self.insts[blk.inst_start as usize..blk.inst_end as usize]
    }
}

fn predecode_mem(m: &MemRef, globals: &[u64]) -> PMem {
    let base = match m.base {
        Base::None => PBase::Zero,
        Base::Reg(r) => PBase::Reg(r.0),
        Base::Frame => PBase::Frame,
        Base::Global(g) => PBase::Abs(globals[g.0 as usize]),
    };
    let (index_reg, scale) = match m.index {
        Some((r, s)) => (r.0, s),
        None => (NO_REG, 1),
    };
    PMem { base, index_reg, scale, size: m.size.bytes() as u8, disp: m.disp }
}

fn predecode_val(op: &Operand, globals: &[u64]) -> PVal {
    match op {
        Operand::Reg(r) => PVal::Reg(r.0),
        Operand::Imm(v) => PVal::Imm(*v),
        Operand::Mem(m) => PVal::Mem(Box::new(predecode_mem(m, globals))),
    }
}

fn predecode_inst(inst: &Inst, globals: &[u64]) -> PInst {
    match inst {
        // Scalar ALU forms get dedicated, operand-inline encodings.
        Inst::Alu { op, dst, a: Operand::Reg(a), b: Operand::Reg(b) } => {
            PInst::AluRR { op: *op, dst: dst.0, a: a.0, b: b.0 }
        }
        Inst::Alu { op, dst, a: Operand::Reg(a), b: Operand::Imm(b) } => {
            PInst::AluRI { op: *op, dst: dst.0, a: a.0, b: *b }
        }
        Inst::Alu { op, dst, a, b } => PInst::Alu {
            op: *op,
            dst: dst.0,
            a: predecode_val(a, globals),
            b: predecode_val(b, globals),
        },
        Inst::Mov { dst, src: Operand::Reg(r) } => PInst::MovR { dst: dst.0, src: r.0 },
        Inst::Mov { dst, src: Operand::Imm(v) } => PInst::MovI { dst: dst.0, src: *v },
        Inst::Mov { dst, src: Operand::Mem(m) } => {
            PInst::Load { dst: dst.0, addr: predecode_mem(m, globals) }
        }
        Inst::Store { addr, src } => {
            PInst::Store { addr: predecode_mem(addr, globals), src: predecode_val(src, globals) }
        }
        Inst::Lea { dst, addr } => PInst::Lea { dst: dst.0, addr: predecode_mem(addr, globals) },
        Inst::Alloc { dst, size } => {
            PInst::Alloc { dst: dst.0, size: predecode_val(size, globals) }
        }
        Inst::Free { addr } => PInst::Free { addr: predecode_val(addr, globals) },
        Inst::Io { cost, .. } => PInst::Io { cost: *cost },
        Inst::Nop => PInst::Nop,
    }
}

fn predecode_term(term: &Terminator, globals: &[u64]) -> PTerm {
    match term {
        Terminator::Jmp(t) => PTerm::Jmp(*t),
        Terminator::Br { cond, a: Operand::Reg(a), b: Operand::Reg(b), taken, fallthrough } => {
            PTerm::BrRR { cond: *cond, a: a.0, b: b.0, taken: *taken, fallthrough: *fallthrough }
        }
        Terminator::Br { cond, a: Operand::Reg(a), b: Operand::Imm(b), taken, fallthrough } => {
            PTerm::BrRI { cond: *cond, a: a.0, b: *b, taken: *taken, fallthrough: *fallthrough }
        }
        Terminator::Br { cond, a, b, taken, fallthrough } => PTerm::Br {
            cond: *cond,
            a: predecode_val(a, globals),
            b: predecode_val(b, globals),
            taken: *taken,
            fallthrough: *fallthrough,
        },
        Terminator::Switch { val, base, targets, default } => PTerm::Switch {
            val: predecode_val(val, globals),
            base: *base,
            targets: targets.clone().into_boxed_slice(),
            default: *default,
        },
        Terminator::Call { callee, args, ret_to, dst } => PTerm::Call {
            callee: *callee,
            args: args.iter().map(|a| predecode_val(a, globals)).collect(),
            ret_to: *ret_to,
            dst: *dst,
        },
        Terminator::Ret { val } => {
            PTerm::Ret { val: val.as_ref().map(|v| predecode_val(v, globals)) }
        }
        Terminator::Acquire { lock, next } => {
            PTerm::Acquire { lock: predecode_val(lock, globals), next: *next }
        }
        Terminator::Release { lock, next } => {
            PTerm::Release { lock: predecode_val(lock, globals), next: *next }
        }
        Terminator::Barrier { id, next } => PTerm::Barrier { id: *id, next: *next },
    }
}

const NULL_GUARD: u64 = 0x1000;

impl ExecCtx<'_> {
    #[inline]
    fn p_addr(&self, m: &PMem) -> u64 {
        let base = match m.base {
            PBase::Zero => 0,
            PBase::Reg(r) => self.regs[r as usize] as u64,
            PBase::Frame => self.fp,
            PBase::Abs(a) => a,
        };
        let index = if m.index_reg == NO_REG {
            0
        } else {
            (self.regs[m.index_reg as usize] as u64).wrapping_mul(m.scale as u64)
        };
        base.wrapping_add(index).wrapping_add(m.disp as u64)
    }

    #[inline]
    fn p_value(&mut self, v: &PVal, acc: &mut Vec<MemAccess>) -> Result<i64, Trap> {
        match v {
            PVal::Reg(r) => Ok(self.regs[*r as usize]),
            PVal::Imm(v) => Ok(*v),
            PVal::Mem(m) => {
                let addr = self.p_addr(m);
                if addr < NULL_GUARD {
                    return Err(Trap::NullDeref(addr));
                }
                let size = m.size as u32;
                acc.push(MemAccess { addr, size, is_store: false });
                Ok(self.mem.read(addr, size) as i64)
            }
        }
    }

    /// Predecoded twin of [`ExecCtx::exec_inst`]: identical semantics,
    /// traps, and access order.
    #[inline]
    pub(crate) fn exec_pinst(
        &mut self,
        inst: &PInst,
        acc: &mut Vec<MemAccess>,
    ) -> Result<(), Trap> {
        match inst {
            PInst::AluRR { op, dst, a, b } => {
                let av = self.regs[*a as usize];
                let bv = self.regs[*b as usize];
                let v = op.eval(av, bv).ok_or(Trap::DivByZero)?;
                self.regs[*dst as usize] = v;
            }
            PInst::AluRI { op, dst, a, b } => {
                let av = self.regs[*a as usize];
                let v = op.eval(av, *b).ok_or(Trap::DivByZero)?;
                self.regs[*dst as usize] = v;
            }
            PInst::Alu { op, dst, a, b } => {
                let av = self.p_value(a, acc)?;
                let bv = self.p_value(b, acc)?;
                let v = op.eval(av, bv).ok_or(Trap::DivByZero)?;
                self.regs[*dst as usize] = v;
            }
            PInst::MovR { dst, src } => {
                self.regs[*dst as usize] = self.regs[*src as usize];
            }
            PInst::MovI { dst, src } => {
                self.regs[*dst as usize] = *src;
            }
            PInst::Load { dst, addr } => {
                let a = self.p_addr(addr);
                if a < NULL_GUARD {
                    return Err(Trap::NullDeref(a));
                }
                let size = addr.size as u32;
                acc.push(MemAccess { addr: a, size, is_store: false });
                self.regs[*dst as usize] = self.mem.read(a, size) as i64;
            }
            PInst::Store { addr, src } => {
                let v = self.p_value(src, acc)?;
                let a = self.p_addr(addr);
                if a < NULL_GUARD {
                    return Err(Trap::NullDeref(a));
                }
                let size = addr.size as u32;
                acc.push(MemAccess { addr: a, size, is_store: true });
                self.mem.write(a, size, v as u64);
            }
            PInst::Lea { dst, addr } => {
                self.regs[*dst as usize] = self.p_addr(addr) as i64;
            }
            PInst::Alloc { dst, size } => {
                let n = self.p_value(size, acc)?;
                let ptr = self.heap.alloc(n.max(1) as u64)?;
                self.regs[*dst as usize] = ptr as i64;
            }
            PInst::Free { addr } => {
                let a = self.p_value(addr, acc)?;
                self.heap.free(a as u64)?;
            }
            PInst::Io { .. } | PInst::Nop => {}
        }
        Ok(())
    }

    /// Predecoded twin of [`ExecCtx::eval_term`].
    pub(crate) fn eval_pterm(
        &mut self,
        term: &PTerm,
        acc: &mut Vec<MemAccess>,
    ) -> Result<Next, Trap> {
        Ok(match term {
            PTerm::Jmp(t) => Next::Goto(*t),
            PTerm::BrRR { cond, a, b, taken, fallthrough } => {
                let av = self.regs[*a as usize];
                let bv = self.regs[*b as usize];
                Next::Goto(if cond.eval(av, bv) { *taken } else { *fallthrough })
            }
            PTerm::BrRI { cond, a, b, taken, fallthrough } => {
                let av = self.regs[*a as usize];
                Next::Goto(if cond.eval(av, *b) { *taken } else { *fallthrough })
            }
            PTerm::Br { cond, a, b, taken, fallthrough } => {
                let av = self.p_value(a, acc)?;
                let bv = self.p_value(b, acc)?;
                Next::Goto(if cond.eval(av, bv) { *taken } else { *fallthrough })
            }
            PTerm::Switch { val, base, targets, default } => {
                let v = self.p_value(val, acc)?;
                let idx = v.wrapping_sub(*base);
                let t = if idx >= 0 && (idx as usize) < targets.len() {
                    targets[idx as usize]
                } else {
                    *default
                };
                Next::Goto(t)
            }
            PTerm::Call { callee, args, ret_to, dst } => {
                let mut vals = CallArgs::with_capacity(args.len());
                for a in args.iter() {
                    vals.push(self.p_value(a, acc)?);
                }
                Next::Call { callee: *callee, args: vals, ret_to: *ret_to, dst: *dst }
            }
            PTerm::Ret { val } => {
                let v = match val {
                    Some(v) => Some(self.p_value(v, acc)?),
                    None => None,
                };
                Next::Ret(v)
            }
            PTerm::Acquire { lock, next } => {
                let l = self.p_value(lock, acc)? as u64;
                Next::Acquire { lock: l, next: *next }
            }
            PTerm::Release { lock, next } => {
                let l = self.p_value(lock, acc)? as u64;
                Next::Release { lock: l, next: *next }
            }
            PTerm::Barrier { id, next } => Next::Barrier { id: *id, next: *next },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;
    use crate::memory::Memory;
    use threadfuser_ir::ProgramBuilder;

    fn build_demo() -> (Program, FuncId) {
        let mut pb = ProgramBuilder::new();
        let g = pb.global_i64("g", &[11, 22]);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let src = fb.global_ref(g, Operand::Reg(tid), 8);
            let v = fb.load(src);
            let v2 = fb.alu(AluOp::Add, v, 5i64);
            fb.store(src, v2);
            fb.ret(Some(Operand::Reg(v2)));
        });
        (pb.build().unwrap(), k)
    }

    #[test]
    fn predecode_resolves_globals_to_absolute_addresses() {
        let (p, k) = build_demo();
        let exec = ExecProgram::build(&p);
        assert!(exec.matches(&p));
        let blk = exec.block(k, p.function(k).entry);
        let insts = exec.insts(blk);
        let PInst::Load { addr: m, .. } = &insts[0] else {
            panic!("expected load, got {:?}", insts[0]);
        };
        let expected = global_layout(&p)[0];
        assert!(matches!(m.base, PBase::Abs(a) if a == expected));
        assert_eq!(m.size, 8);
    }

    #[test]
    fn predecoded_exec_matches_legacy_exec() {
        let (p, k) = build_demo();
        let exec = ExecProgram::build(&p);
        let f = p.function(k);
        let blk = exec.block(k, f.entry);
        assert_eq!(blk.n_insts, f.block(f.entry).len_with_term());

        // Run the same block body through both executors and compare.
        let run = |legacy: bool| {
            let mut regs = vec![0i64; f.reg_count as usize];
            regs[0] = 1; // tid
            let mut mem = Memory::with_globals(&p);
            let mut heap = Heap::new();
            let fp = crate::layout::stack_top(0) - f.frame_size as u64;
            let mut acc = Vec::new();
            let mut ctx = ExecCtx { regs: &mut regs, fp, mem: &mut mem, heap: &mut heap };
            if legacy {
                for inst in &f.block(f.entry).insts {
                    ctx.exec_inst(inst, &mut acc).unwrap();
                }
                let next = ctx.eval_term(&f.block(f.entry).term, &mut acc).unwrap();
                (regs.clone(), acc, next, mem.read(global_layout(&p)[0] + 8, 8))
            } else {
                for inst in exec.insts(blk) {
                    ctx.exec_pinst(inst, &mut acc).unwrap();
                }
                let next = ctx.eval_pterm(&blk.term, &mut acc).unwrap();
                (regs.clone(), acc, next, mem.read(global_layout(&p)[0] + 8, 8))
            }
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn touches_memory_matches_ir() {
        let (p, _) = build_demo();
        let exec = ExecProgram::build(&p);
        for (fi, f) in p.functions().iter().enumerate() {
            for (bi, b) in f.iter_blocks() {
                let blk = exec.block(FuncId(fi as u32), bi);
                for (inst, pinst) in b.insts.iter().zip(exec.insts(blk)) {
                    assert_eq!(inst.touches_memory(), pinst.touches_memory());
                }
                assert_eq!(b.term.mem_read().is_some(), blk.term.touches_memory());
            }
        }
    }
}
