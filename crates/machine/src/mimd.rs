//! The MIMD multicore machine: a round-robin interpreter executing one
//! TFIR kernel invocation per logical thread, with pthread-style mutexes,
//! barriers, a shared heap, and per-thread stacks.
//!
//! This is the "native CPU execution" of the paper: the tracer attaches to
//! it through [`ExecHook`] exactly as the PIN tool attaches to an x86
//! process. Contended mutexes busy-wait; spin iterations are accounted as
//! *skipped* instructions (Fig. 8), as are opaque I/O operations.

use crate::exec::{ExecCtx, MemAccess, Next, Trap};
use crate::heap::Heap;
use crate::hooks::{ExecHook, SkipKind};
use crate::layout::{stack_floor, stack_top};
use crate::memory::Memory;
use crate::predecode::ExecProgram;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use threadfuser_ir::{BlockAddr, BlockId, FuncId, Inst, Program, Reg};
use threadfuser_obs::{Obs, Phase};

/// Which instruction-fetch path the MIMD machine runs from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// Execute from the flat, predecoded [`ExecProgram`] (the default and
    /// the fast path).
    #[default]
    Predecoded,
    /// Walk the nested [`Program`] enums directly on every dynamic
    /// instruction. Kept as the benchmark baseline (`perf_trace`) and a
    /// semantic cross-check; traces are bit-identical between engines.
    Legacy,
}

/// Configuration of one MIMD run.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of logical threads, each invoking the kernel once.
    pub n_threads: u32,
    /// Kernel function; thread `t` receives arguments `[t, extra...]`.
    pub kernel: FuncId,
    /// Extra kernel arguments shared by all threads.
    pub extra_args: Vec<i64>,
    /// Optional zero-argument setup function executed single-threaded
    /// (untraced) before the workers start.
    pub init: Option<FuncId>,
    /// Basic blocks executed per scheduler turn.
    pub quantum_blocks: u32,
    /// Skipped instructions charged per failed mutex acquisition.
    pub spin_cost: u32,
    /// Total dynamic instruction budget (traps with [`Trap::Budget`]).
    pub max_total_insts: u64,
    /// Instruction-fetch path; see [`ExecEngine`].
    pub engine: ExecEngine,
    /// Pre-built predecoded program to share across runs (built on demand
    /// when absent and the engine is [`ExecEngine::Predecoded`]). The
    /// artifact depends only on the program, so any machine over the same
    /// program may reuse it.
    pub exec: Option<Arc<ExecProgram>>,
    /// Observability handle; the MIMD run reports executed / skipped
    /// instruction aggregates under the `trace` phase (native execution
    /// *is* the tracing phase). Default [`Obs::none`]: zero cost.
    pub obs: Obs,
}

impl MachineConfig {
    /// Default configuration for `n_threads` invocations of `kernel`.
    pub fn new(kernel: FuncId, n_threads: u32) -> Self {
        MachineConfig {
            n_threads,
            kernel,
            extra_args: Vec::new(),
            init: None,
            quantum_blocks: 64,
            spin_cost: 16,
            max_total_insts: 500_000_000,
            engine: ExecEngine::default(),
            exec: None,
            obs: Obs::none(),
        }
    }

    /// Attaches an observability handle (chainable).
    pub fn observe(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Selects the instruction-fetch path (chainable).
    pub fn engine(mut self, engine: ExecEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Supplies a cached predecoded program (chainable); must have been
    /// built from the same program this machine will run.
    pub fn exec_program(mut self, exec: Arc<ExecProgram>) -> Self {
        self.exec = Some(exec);
        self
    }
}

/// Per-thread execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Dynamic instructions traced (bodies + terminators + I/O call sites).
    pub traced_insts: u64,
    /// Instructions skipped inside opaque I/O.
    pub skipped_io: u64,
    /// Instructions skipped spinning on contended mutexes.
    pub skipped_spin: u64,
    /// Basic blocks executed.
    pub blocks: u64,
    /// Memory accesses performed.
    pub mem_accesses: u64,
}

/// Whole-run statistics.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-thread counters, indexed by tid.
    pub per_thread: Vec<ThreadStats>,
    /// Heap allocations performed.
    pub heap_allocs: u64,
}

impl RunStats {
    /// Total traced instructions over all threads.
    pub fn total_traced(&self) -> u64 {
        self.per_thread.iter().map(|t| t.traced_insts).sum()
    }

    /// Total skipped (I/O + spin) instructions over all threads.
    pub fn total_skipped(&self) -> u64 {
        self.per_thread.iter().map(|t| t.skipped_io + t.skipped_spin).sum()
    }

    /// Fraction of instructions that were traced (paper Fig. 8; 1.0 when
    /// nothing executed).
    pub fn traced_fraction(&self) -> f64 {
        let traced = self.total_traced();
        let all = traced + self.total_skipped();
        if all == 0 {
            1.0
        } else {
            traced as f64 / all as f64
        }
    }
}

/// Errors terminating a MIMD run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A thread trapped.
    Trapped {
        /// Faulting thread.
        tid: u32,
        /// Block being executed.
        at: BlockAddr,
        /// The fault.
        trap: Trap,
    },
    /// No thread can make progress.
    Deadlock {
        /// Threads still live.
        waiting: Vec<u32>,
    },
    /// The kernel's parameter count does not match `1 + extra_args.len()`.
    KernelArity {
        /// Declared parameters.
        expected: u16,
        /// Arguments the machine would pass.
        got: usize,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Trapped { tid, at, trap } => {
                write!(f, "thread {tid} trapped at {at}: {trap}")
            }
            MachineError::Deadlock { waiting } => write!(f, "deadlock; live threads {waiting:?}"),
            MachineError::KernelArity { expected, got } => {
                write!(f, "kernel expects {expected} params, machine passes {got}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

#[derive(Debug)]
struct Frame {
    func: FuncId,
    block: BlockId,
    regs: Vec<i64>,
    fp: u64,
    ret_dst: Option<Reg>,
    saved_sp: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// About to trace and execute the current block's body.
    BlockStart,
    /// Body done; terminator pending (used to retry `Acquire` without
    /// re-tracing the body).
    AtTerminator,
    /// Parked at a barrier; released by the last arrival.
    AtBarrier,
    Done,
}

#[derive(Debug)]
struct Thread {
    frames: Vec<Frame>,
    sp: u64,
    state: State,
    stats: ThreadStats,
}

fn make_thread(program: &Program, func: FuncId, tid: u32, args: &[i64]) -> Thread {
    let f = program.function(func);
    let top = stack_top(tid);
    let fp = align_down(top - f.frame_size as u64, 16);
    let mut regs = vec![0i64; f.reg_count as usize];
    regs[..args.len()].copy_from_slice(args);
    Thread {
        frames: vec![Frame { func, block: f.entry, regs, fp, ret_dst: None, saved_sp: top }],
        sp: fp,
        state: State::BlockStart,
        stats: ThreadStats::default(),
    }
}

/// The MIMD multicore machine.
///
/// ```
/// use threadfuser_ir::{ProgramBuilder, Operand};
/// use threadfuser_machine::{Machine, MachineConfig, NoopHook};
///
/// let mut pb = ProgramBuilder::new();
/// let out = pb.global("out", 8 * 4);
/// let kernel = pb.function("worker", 1, |fb| {
///     let tid = fb.arg(0);
///     let dst = fb.global_ref(out, Operand::Reg(tid), 8);
///     fb.store(dst, tid);
///     fb.ret(None);
/// });
/// let program = pb.build().unwrap();
/// let mut machine = Machine::new(&program, MachineConfig::new(kernel, 4)).unwrap();
/// let stats = machine.run(&mut NoopHook).unwrap();
/// assert_eq!(stats.per_thread.len(), 4);
/// assert_eq!(machine.memory().read(machine.memory().global_addr(out) + 24, 8), 3);
/// ```
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    config: MachineConfig,
    exec: Option<Arc<ExecProgram>>,
    memory: Memory,
    heap: Heap,
    threads: Vec<Thread>,
    locks: HashMap<u64, u32>,
    barriers: HashMap<u32, Vec<(u32, BlockId)>>,
    total_insts: u64,
    ran: bool,
    /// Retired call-frame register files, reused by later calls: deep
    /// call chains (every frame is a fresh `Vec` otherwise) stay off the
    /// allocator.
    reg_pool: Vec<Vec<i64>>,
}

impl<'p> Machine<'p> {
    /// Loads `program` and prepares `config.n_threads` kernel invocations.
    ///
    /// # Errors
    /// [`MachineError::KernelArity`] if the kernel signature does not
    /// accept `[tid, extra...]`.
    pub fn new(program: &'p Program, config: MachineConfig) -> Result<Self, MachineError> {
        let kf = program.function(config.kernel);
        let got = 1 + config.extra_args.len();
        if kf.params as usize != got {
            return Err(MachineError::KernelArity { expected: kf.params, got });
        }
        let exec = match config.engine {
            ExecEngine::Predecoded => Some(match &config.exec {
                Some(e) => {
                    debug_assert!(e.matches(program), "cached ExecProgram from another program");
                    Arc::clone(e)
                }
                None => Arc::new(ExecProgram::build_observed(program, &config.obs)),
            }),
            ExecEngine::Legacy => None,
        };
        let memory = Memory::with_globals(program);
        let mut threads = Vec::with_capacity(config.n_threads as usize);
        for tid in 0..config.n_threads {
            let mut args = vec![tid as i64];
            args.extend_from_slice(&config.extra_args);
            threads.push(make_thread(program, config.kernel, tid, &args));
        }
        Ok(Machine {
            program,
            config,
            exec,
            memory,
            heap: Heap::new(),
            threads,
            locks: HashMap::new(),
            barriers: HashMap::new(),
            total_insts: 0,
            ran: false,
            reg_pool: Vec::new(),
        })
    }

    /// The machine's memory image (inspect results after [`Self::run`]).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Runs init (if any) and all threads to completion.
    ///
    /// # Errors
    /// Returns the first trap, or a deadlock report.
    ///
    /// # Panics
    /// Panics when called twice on the same machine.
    pub fn run(&mut self, hook: &mut impl ExecHook) -> Result<RunStats, MachineError> {
        assert!(!self.ran, "Machine::run may only be called once");
        self.ran = true;

        if let Some(init) = self.config.init {
            self.run_init(init)?;
        }

        loop {
            let mut progress = false;
            for tid in 0..self.threads.len() as u32 {
                match self.threads[tid as usize].state {
                    State::Done | State::AtBarrier => continue,
                    _ => {}
                }
                progress |= self.run_turn(tid, hook)?;
            }
            let live: Vec<u32> = (0..self.threads.len() as u32)
                .filter(|&t| self.threads[t as usize].state != State::Done)
                .collect();
            if live.is_empty() {
                break;
            }
            if !progress {
                return Err(MachineError::Deadlock { waiting: live });
            }
        }

        let stats = RunStats {
            per_thread: self.threads.iter().map(|t| t.stats).collect(),
            heap_allocs: self.heap.alloc_count(),
        };
        if self.config.obs.enabled() {
            let obs = &self.config.obs;
            obs.counter(Phase::Trace, "executed_insts", stats.total_traced());
            obs.counter(
                Phase::Trace,
                "skipped_io_insts",
                stats.per_thread.iter().map(|t| t.skipped_io).sum(),
            );
            obs.counter(
                Phase::Trace,
                "spin_insts",
                stats.per_thread.iter().map(|t| t.skipped_spin).sum(),
            );
            obs.counter(
                Phase::Trace,
                "mem_accesses",
                stats.per_thread.iter().map(|t| t.mem_accesses).sum(),
            );
            obs.counter(Phase::Trace, "heap_allocs", stats.heap_allocs);
        }
        Ok(stats)
    }

    /// Runs the setup function single-threaded and untraced, on a scratch
    /// thread slot above the worker stacks.
    fn run_init(&mut self, init: FuncId) -> Result<(), MachineError> {
        let tid = self.config.n_threads;
        self.threads.push(make_thread(self.program, init, tid, &[]));
        let slot = self.threads.len() - 1;
        let result = loop {
            match self.run_turn(slot as u32, &mut crate::hooks::NoopHook) {
                Err(e) => break Err(e),
                Ok(progress) => match self.threads[slot].state {
                    State::Done => break Ok(()),
                    _ if !progress => {
                        break Err(MachineError::Deadlock { waiting: vec![tid] });
                    }
                    _ => {}
                },
            }
        };
        self.threads.pop();
        result
    }

    fn charge(&mut self, tid: u32, at: BlockAddr, n: u64) -> Result<(), MachineError> {
        self.total_insts += n;
        if self.total_insts > self.config.max_total_insts {
            Err(MachineError::Trapped { tid, at, trap: Trap::Budget })
        } else {
            Ok(())
        }
    }

    /// Executes up to `quantum_blocks` blocks of thread `tid`; returns
    /// whether any progress happened.
    fn run_turn(&mut self, tid: u32, hook: &mut impl ExecHook) -> Result<bool, MachineError> {
        let program = self.program;
        let exec = self.exec.clone();
        let exec = exec.as_deref();
        let mut progress = false;
        let mut acc: Vec<MemAccess> = Vec::with_capacity(4);

        for _ in 0..self.config.quantum_blocks {
            // Snapshot position.
            let (func_id, block_id, state) = {
                let th = &self.threads[tid as usize];
                if matches!(th.state, State::Done | State::AtBarrier) {
                    return Ok(progress);
                }
                let f = th.frames.last().expect("live thread has a frame");
                (f.func, f.block, th.state)
            };
            // Engine-specific block handle: the predecoded path fetches a
            // flat-table entry, the legacy path re-walks the Program enums.
            let pre = exec.map(|e| e.block(func_id, block_id));
            let legacy =
                if exec.is_none() { Some(program.function(func_id).block(block_id)) } else { None };
            let n_insts = match pre {
                Some(blk) => blk.n_insts,
                None => legacy.expect("legacy block").len_with_term(),
            };
            let addr = BlockAddr::new(func_id, block_id);

            // ---- block body --------------------------------------------
            if state == State::BlockStart {
                hook.on_block(tid, addr, n_insts);
                let mut charge: u64 = 0;
                // Intra-function target of a fused pure-block transition
                // (body + register-only terminator in one borrow).
                let mut fused: Option<BlockId> = None;
                {
                    let th = &mut self.threads[tid as usize];
                    th.stats.blocks += 1;
                    let stats = &mut th.stats;
                    let frame = th.frames.last_mut().expect("frame");
                    // One body loop per engine; `$io` / `$exec` are the only
                    // differences, everything else must stay in lockstep so
                    // the engines trace bit-identically.
                    macro_rules! run_body {
                        ($insts:expr, $io:path, $exec_one:ident) => {
                            for (i, inst) in $insts.iter().enumerate() {
                                charge += 1;
                                if let $io { cost, .. } = inst {
                                    stats.traced_insts += 1;
                                    stats.skipped_io += *cost as u64;
                                    charge += *cost as u64;
                                    hook.on_skipped(tid, *cost as u64, SkipKind::Io);
                                    continue;
                                }
                                acc.clear();
                                let mut ctx = ExecCtx {
                                    regs: &mut frame.regs,
                                    fp: frame.fp,
                                    mem: &mut self.memory,
                                    heap: &mut self.heap,
                                };
                                if let Err(trap) = ctx.$exec_one(inst, &mut acc) {
                                    return Err(MachineError::Trapped { tid, at: addr, trap });
                                }
                                stats.traced_insts += 1;
                                stats.mem_accesses += acc.len() as u64;
                                for a in &acc {
                                    hook.on_mem(tid, i as u32, a.addr, a.size, a.is_store);
                                }
                            }
                        };
                    }
                    match pre {
                        // Predecode proved the body records no memory
                        // accesses and skips no I/O: tight loop, batched
                        // counters, no hook dispatch. Observable behavior
                        // (trace events, traps, charge) is identical to
                        // the general loop below.
                        Some(blk) if blk.pure_body => {
                            let e = exec.expect("predecoded engine");
                            let insts = e.insts(blk);
                            acc.clear();
                            let mut ctx = ExecCtx {
                                regs: &mut frame.regs,
                                fp: frame.fp,
                                mem: &mut self.memory,
                                heap: &mut self.heap,
                            };
                            for inst in insts {
                                if let Err(trap) = ctx.exec_pinst(inst, &mut acc) {
                                    return Err(MachineError::Trapped { tid, at: addr, trap });
                                }
                            }
                            debug_assert!(acc.is_empty(), "pure body recorded an access");
                            stats.traced_insts += insts.len() as u64;
                            charge += insts.len() as u64;
                            // A jump or register-only branch after a pure
                            // body transfers control right here: no memory
                            // access to report, no hook to call, no second
                            // thread borrow. Observable behavior matches
                            // the general `Next::Goto` arm below.
                            use crate::predecode::PTerm;
                            fused = match &blk.term {
                                PTerm::Jmp(t) => Some(*t),
                                PTerm::BrRR { cond, a, b, taken, fallthrough } => {
                                    let av = frame.regs[*a as usize];
                                    let bv = frame.regs[*b as usize];
                                    Some(if cond.eval(av, bv) { *taken } else { *fallthrough })
                                }
                                PTerm::BrRI { cond, a, b, taken, fallthrough } => {
                                    let av = frame.regs[*a as usize];
                                    Some(if cond.eval(av, *b) { *taken } else { *fallthrough })
                                }
                                _ => None,
                            };
                            if let Some(b) = fused {
                                stats.traced_insts += 1;
                                charge += 1;
                                frame.block = b;
                            }
                        }
                        Some(blk) => {
                            let e = exec.expect("predecoded engine");
                            run_body!(e.insts(blk), crate::predecode::PInst::Io, exec_pinst);
                        }
                        None => {
                            run_body!(legacy.expect("legacy block").insts, Inst::Io, exec_inst);
                        }
                    }
                    th.state =
                        if fused.is_some() { State::BlockStart } else { State::AtTerminator };
                }
                progress = true;
                self.charge(tid, addr, charge)?;
                if fused.is_some() {
                    continue;
                }
            }

            // ---- terminator ----------------------------------------------
            acc.clear();
            let next = {
                let th = &mut self.threads[tid as usize];
                let frame = th.frames.last_mut().expect("frame");
                let mut ctx = ExecCtx {
                    regs: &mut frame.regs,
                    fp: frame.fp,
                    mem: &mut self.memory,
                    heap: &mut self.heap,
                };
                let evaluated = match pre {
                    Some(blk) => ctx.eval_pterm(&blk.term, &mut acc),
                    None => ctx.eval_term(&legacy.expect("legacy block").term, &mut acc),
                };
                match evaluated {
                    Ok(n) => n,
                    Err(trap) => return Err(MachineError::Trapped { tid, at: addr, trap }),
                }
            };
            let term_idx = n_insts - 1;

            match next {
                Next::Goto(b) => {
                    let th = &mut self.threads[tid as usize];
                    th.stats.traced_insts += 1;
                    th.stats.mem_accesses += acc.len() as u64;
                    for a in &acc {
                        hook.on_mem(tid, term_idx, a.addr, a.size, a.is_store);
                    }
                    th.frames.last_mut().expect("frame").block = b;
                    th.state = State::BlockStart;
                    progress = true;
                    self.charge(tid, addr, 1)?;
                }
                Next::Call { callee, args, ret_to, dst } => {
                    let cf = program.function(callee);
                    let th = &mut self.threads[tid as usize];
                    th.stats.traced_insts += 1;
                    {
                        let frame = th.frames.last_mut().expect("frame");
                        frame.block = ret_to;
                        frame.ret_dst = dst;
                    }
                    let saved_sp = th.sp;
                    let fp = align_down(th.sp - cf.frame_size as u64, 16);
                    if fp < stack_floor(tid) {
                        return Err(MachineError::Trapped {
                            tid,
                            at: addr,
                            trap: Trap::StackOverflow,
                        });
                    }
                    let mut regs = self.reg_pool.pop().unwrap_or_default();
                    regs.clear();
                    regs.resize(cf.reg_count as usize, 0);
                    regs[..args.len()].copy_from_slice(&args);
                    hook.on_call(tid, callee);
                    th.frames.push(Frame {
                        func: callee,
                        block: cf.entry,
                        regs,
                        fp,
                        ret_dst: None,
                        saved_sp,
                    });
                    th.sp = fp;
                    th.state = State::BlockStart;
                    progress = true;
                    self.charge(tid, addr, 1)?;
                }
                Next::Ret(val) => {
                    let done = {
                        let th = &mut self.threads[tid as usize];
                        th.stats.traced_insts += 1;
                        th.stats.mem_accesses += acc.len() as u64;
                        for a in &acc {
                            hook.on_mem(tid, term_idx, a.addr, a.size, a.is_store);
                        }
                        hook.on_ret(tid);
                        let finished = th.frames.pop().expect("ret pops a frame");
                        th.sp = finished.saved_sp;
                        self.reg_pool.push(finished.regs);
                        match th.frames.last_mut() {
                            Some(caller) => {
                                if let (Some(dst), Some(v)) = (caller.ret_dst.take(), val) {
                                    caller.regs[dst.0 as usize] = v;
                                }
                                th.state = State::BlockStart;
                                false
                            }
                            None => {
                                th.state = State::Done;
                                true
                            }
                        }
                    };
                    if done {
                        hook.on_thread_end(tid);
                        self.release_satisfied_barriers();
                    }
                    progress = true;
                    self.charge(tid, addr, 1)?;
                    if done {
                        return Ok(progress);
                    }
                }
                Next::Acquire { lock, next } => {
                    let owner = self.locks.get(&lock).copied();
                    match owner {
                        None => {
                            self.locks.insert(lock, tid);
                            let th = &mut self.threads[tid as usize];
                            th.stats.traced_insts += 1;
                            hook.on_acquire(tid, lock);
                            th.frames.last_mut().expect("frame").block = next;
                            th.state = State::BlockStart;
                            progress = true;
                            self.charge(tid, addr, 1)?;
                        }
                        Some(owner) if owner == tid => {
                            return Err(MachineError::Trapped {
                                tid,
                                at: addr,
                                trap: Trap::RecursiveLock(lock),
                            });
                        }
                        Some(_) => {
                            // Contended: spin and yield the turn.
                            let spin = self.config.spin_cost as u64;
                            let th = &mut self.threads[tid as usize];
                            th.stats.skipped_spin += spin;
                            hook.on_skipped(tid, spin, SkipKind::LockSpin);
                            self.charge(tid, addr, spin)?;
                            return Ok(progress);
                        }
                    }
                }
                Next::Release { lock, next } => {
                    let owner = self.locks.get(&lock).copied();
                    if owner != Some(tid) {
                        return Err(MachineError::Trapped {
                            tid,
                            at: addr,
                            trap: Trap::ReleaseUnheld(lock),
                        });
                    }
                    self.locks.remove(&lock);
                    let th = &mut self.threads[tid as usize];
                    th.stats.traced_insts += 1;
                    hook.on_release(tid, lock);
                    th.frames.last_mut().expect("frame").block = next;
                    th.state = State::BlockStart;
                    progress = true;
                    self.charge(tid, addr, 1)?;
                }
                Next::Barrier { id, next } => {
                    {
                        let th = &mut self.threads[tid as usize];
                        th.stats.traced_insts += 1;
                        th.state = State::AtBarrier;
                    }
                    hook.on_barrier(tid, id);
                    self.barriers.entry(id).or_default().push((tid, next));
                    progress = true;
                    self.charge(tid, addr, 1)?;
                    self.release_satisfied_barriers();
                    return Ok(progress);
                }
            }
        }
        Ok(progress)
    }

    fn live_count(&self) -> usize {
        self.threads
            .iter()
            .take(self.config.n_threads as usize)
            .filter(|t| t.state != State::Done)
            .count()
    }

    /// Releases every barrier whose arrival count covers all live threads.
    fn release_satisfied_barriers(&mut self) {
        let live = self.live_count();
        let ready: Vec<u32> = self
            .barriers
            .iter()
            .filter(|(_, waiters)| !waiters.is_empty() && waiters.len() >= live)
            .map(|(&id, _)| id)
            .collect();
        for id in ready {
            for (tid, next) in self.barriers.remove(&id).expect("barrier present") {
                let th = &mut self.threads[tid as usize];
                th.frames.last_mut().expect("frame").block = next;
                th.state = State::BlockStart;
            }
        }
    }
}

fn align_down(v: u64, align: u64) -> u64 {
    v / align * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoopHook;
    use threadfuser_ir::{AccessSize, AluOp, Cond, IoKind, MemRef, Operand, ProgramBuilder};

    #[test]
    fn vector_add_writes_all_slots() {
        let mut pb = ProgramBuilder::new();
        let a = pb.global_i64("a", &(0..8).map(|i| i * 10).collect::<Vec<_>>());
        let out = pb.global("out", 8 * 8);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let src = fb.global_ref(a, Operand::Reg(tid), 8);
            let v = fb.load(src);
            let v2 = fb.alu(AluOp::Add, v, 1i64);
            let dst = fb.global_ref(out, Operand::Reg(tid), 8);
            fb.store(dst, v2);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut m = Machine::new(&p, MachineConfig::new(k, 8)).unwrap();
        m.run(&mut NoopHook).unwrap();
        let base = m.memory().global_addr(out);
        for i in 0..8u64 {
            assert_eq!(m.memory().read(base + i * 8, 8), i * 10 + 1);
        }
    }

    #[test]
    fn recursion_and_return_values() {
        let mut pb = ProgramBuilder::new();
        let out = pb.global("out", 8 * 2);
        let fib = pb.declare("fib");
        pb.define(fib, 1, |fb| {
            let n = fb.arg(0);
            let low = fb.new_block();
            let rec = fb.new_block();
            fb.br(Cond::Lt, n, 2i64, low, rec);
            fb.switch_to(low);
            fb.ret(Some(Operand::Reg(n)));
            fb.switch_to(rec);
            let n1 = fb.alu(AluOp::Sub, n, 1i64);
            let n2 = fb.alu(AluOp::Sub, n, 2i64);
            let a = fb.call(fib, &[Operand::Reg(n1)]);
            let b = fb.call(fib, &[Operand::Reg(n2)]);
            let s = fb.alu(AluOp::Add, a, b);
            fb.ret(Some(Operand::Reg(s)));
        });
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let r = fb.call(fib, &[Operand::Imm(10)]);
            let dst = fb.global_ref(out, Operand::Reg(tid), 8);
            fb.store(dst, r);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut m = Machine::new(&p, MachineConfig::new(k, 2)).unwrap();
        m.run(&mut NoopHook).unwrap();
        let base = m.memory().global_addr(out);
        assert_eq!(m.memory().read(base, 8), 55);
        assert_eq!(m.memory().read(base + 8, 8), 55);
    }

    #[test]
    fn locks_serialize_a_shared_counter() {
        let mut pb = ProgramBuilder::new();
        let counter = pb.global("counter", 8);
        let lock = pb.global("lock", 8);
        let k = pb.function("k", 1, |fb| {
            let l = fb.lea(MemRef::global(lock, None, 0, AccessSize::B8));
            fb.for_range(0i64, 100i64, 1, |fb, _i| {
                let lr = fb.mov(Operand::Reg(l));
                fb.acquire(Operand::Reg(lr));
                let c = fb.load(MemRef::global(counter, None, 0, AccessSize::B8));
                let c2 = fb.alu(AluOp::Add, c, 1i64);
                fb.store(MemRef::global(counter, None, 0, AccessSize::B8), c2);
                fb.release(Operand::Reg(lr));
            });
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut cfg = MachineConfig::new(k, 4);
        cfg.quantum_blocks = 3; // force interleaving inside critical sections
        let mut m = Machine::new(&p, cfg).unwrap();
        let stats = m.run(&mut NoopHook).unwrap();
        assert_eq!(m.memory().read(m.memory().global_addr(counter), 8), 400);
        let spins: u64 = stats.per_thread.iter().map(|t| t.skipped_spin).sum();
        assert!(spins > 0, "expected lock contention");
        assert!(stats.traced_fraction() < 1.0);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let n = 4i64;
        let mut pb = ProgramBuilder::new();
        let buf = pb.global("buf", 8 * 4);
        let out = pb.global("out", 8 * 4);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let dst = fb.global_ref(buf, Operand::Reg(tid), 8);
            let v = fb.alu(AluOp::Mul, tid, 7i64);
            fb.store(dst, v);
            fb.barrier(0);
            let nxt = fb.alu(AluOp::Add, tid, 1i64);
            let idx = fb.alu(AluOp::Rem, nxt, n);
            let src = fb.global_ref(buf, Operand::Reg(idx), 8);
            let got = fb.load(src);
            let o = fb.global_ref(out, Operand::Reg(tid), 8);
            fb.store(o, got);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut cfg = MachineConfig::new(k, 4);
        cfg.quantum_blocks = 1;
        let mut m = Machine::new(&p, cfg).unwrap();
        m.run(&mut NoopHook).unwrap();
        let base = m.memory().global_addr(out);
        for t in 0..4u64 {
            assert_eq!(m.memory().read(base + t * 8, 8), ((t + 1) % 4) * 7);
        }
    }

    #[test]
    fn io_instructions_are_skipped_not_executed() {
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            fb.io(IoKind::Read, 500);
            fb.nop();
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut m = Machine::new(&p, MachineConfig::new(k, 1)).unwrap();
        let stats = m.run(&mut NoopHook).unwrap();
        assert_eq!(stats.per_thread[0].skipped_io, 500);
        // io site + nop + ret
        assert_eq!(stats.per_thread[0].traced_insts, 3);
        assert!((stats.traced_fraction() - 3.0 / 503.0).abs() < 1e-12);
    }

    #[test]
    fn budget_exhaustion_traps() {
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let b = fb.current_block();
            fb.nop();
            fb.jmp(b); // infinite loop
        });
        let p = pb.build().unwrap();
        let mut cfg = MachineConfig::new(k, 1);
        cfg.max_total_insts = 10_000;
        let mut m = Machine::new(&p, cfg).unwrap();
        let err = m.run(&mut NoopHook).unwrap_err();
        assert!(matches!(err, MachineError::Trapped { trap: Trap::Budget, .. }));
    }

    #[test]
    fn deadlock_detected_on_cross_lock_wait() {
        let mut pb = ProgramBuilder::new();
        let l0 = pb.global("l0", 8);
        let l1 = pb.global("l1", 8);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let a0 = fb.lea(MemRef::global(l0, None, 0, AccessSize::B8));
            let a1 = fb.lea(MemRef::global(l1, None, 0, AccessSize::B8));
            let t0 = fb.new_block();
            let t1 = fb.new_block();
            let first = fb.var(8);
            let second = fb.var(8);
            fb.br(Cond::Eq, tid, 0i64, t0, t1);
            fb.switch_to(t0);
            fb.store_var(first, a0);
            fb.store_var(second, a1);
            let join = fb.new_block();
            fb.jmp(join);
            fb.switch_to(t1);
            fb.store_var(first, a1);
            fb.store_var(second, a0);
            fb.jmp(join);
            fb.switch_to(join);
            let f = fb.load_var(first);
            fb.acquire(Operand::Reg(f));
            let s = fb.load_var(second);
            fb.acquire(Operand::Reg(s));
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut cfg = MachineConfig::new(k, 2);
        cfg.quantum_blocks = 4;
        let mut m = Machine::new(&p, cfg).unwrap();
        let err = m.run(&mut NoopHook).unwrap_err();
        assert!(matches!(err, MachineError::Deadlock { .. }), "got {err:?}");
    }

    #[test]
    fn kernel_arity_checked() {
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 3, |fb| fb.ret(None));
        let p = pb.build().unwrap();
        let err = Machine::new(&p, MachineConfig::new(k, 1)).unwrap_err();
        assert!(matches!(err, MachineError::KernelArity { expected: 3, got: 1 }));
    }

    #[test]
    fn extra_args_reach_the_kernel() {
        let mut pb = ProgramBuilder::new();
        let out = pb.global("out", 8);
        let k = pb.function("k", 3, |fb| {
            let a = fb.arg(1);
            let b = fb.arg(2);
            let s = fb.alu(AluOp::Add, a, b);
            fb.store(MemRef::global(out, None, 0, AccessSize::B8), s);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut cfg = MachineConfig::new(k, 1);
        cfg.extra_args = vec![40, 2];
        let mut m = Machine::new(&p, cfg).unwrap();
        m.run(&mut NoopHook).unwrap();
        assert_eq!(m.memory().read(m.memory().global_addr(out), 8), 42);
    }

    #[test]
    fn init_function_runs_before_workers() {
        let mut pb = ProgramBuilder::new();
        let data = pb.global("data", 8);
        let init = pb.function("setup", 0, |fb| {
            fb.store(MemRef::global(data, None, 0, AccessSize::B8), 123i64);
            fb.ret(None);
        });
        let out = pb.global("out", 8);
        let k = pb.function("k", 1, |fb| {
            let v = fb.load(MemRef::global(data, None, 0, AccessSize::B8));
            fb.store(MemRef::global(out, None, 0, AccessSize::B8), v);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut cfg = MachineConfig::new(k, 1);
        cfg.init = Some(init);
        let mut m = Machine::new(&p, cfg).unwrap();
        let stats = m.run(&mut NoopHook).unwrap();
        assert_eq!(m.memory().read(m.memory().global_addr(out), 8), 123);
        assert_eq!(stats.per_thread.len(), 1);
    }

    #[test]
    fn deep_recursion_overflows_the_stack() {
        // Unbounded recursion with a large frame must trap, not corrupt.
        let mut pb = ProgramBuilder::new();
        let f = pb.declare("recurse");
        pb.define(f, 1, |fb| {
            let x = fb.arg(0);
            // Burn frame space so the 1 MiB stack fills quickly.
            let _a = fb.frame_array(1024, 8);
            let x1 = fb.alu(AluOp::Add, x, 1i64);
            let r = fb.call(f, &[Operand::Reg(x1)]);
            fb.ret(Some(Operand::Reg(r)));
        });
        let k = pb.function("k", 1, |fb| {
            let _ = fb.call(f, &[Operand::Imm(0)]);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut m = Machine::new(&p, MachineConfig::new(k, 1)).unwrap();
        let err = m.run(&mut NoopHook).unwrap_err();
        assert!(
            matches!(err, MachineError::Trapped { trap: Trap::StackOverflow, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn releasing_an_unheld_lock_traps() {
        let mut pb = ProgramBuilder::new();
        let lock = pb.global("lock", 8);
        let k = pb.function("k", 1, |fb| {
            let l = fb.lea(MemRef::global(lock, None, 0, AccessSize::B8));
            fb.release(Operand::Reg(l));
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut m = Machine::new(&p, MachineConfig::new(k, 1)).unwrap();
        let err = m.run(&mut NoopHook).unwrap_err();
        assert!(
            matches!(err, MachineError::Trapped { trap: Trap::ReleaseUnheld(_), .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn reacquiring_a_held_lock_traps() {
        let mut pb = ProgramBuilder::new();
        let lock = pb.global("lock", 8);
        let k = pb.function("k", 1, |fb| {
            let l = fb.lea(MemRef::global(lock, None, 0, AccessSize::B8));
            fb.acquire(Operand::Reg(l));
            fb.acquire(Operand::Reg(l));
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut m = Machine::new(&p, MachineConfig::new(k, 1)).unwrap();
        let err = m.run(&mut NoopHook).unwrap_err();
        assert!(
            matches!(err, MachineError::Trapped { trap: Trap::RecursiveLock(_), .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn hook_sees_blocks_and_memory_in_order() {
        #[derive(Default)]
        struct Recorder {
            blocks: Vec<BlockAddr>,
            mems: Vec<(u32, bool)>,
            ended: bool,
        }
        impl ExecHook for Recorder {
            fn on_block(&mut self, _tid: u32, addr: BlockAddr, _n: u32) {
                self.blocks.push(addr);
            }
            fn on_mem(&mut self, _tid: u32, idx: u32, _a: u64, _s: u32, st: bool) {
                self.mems.push((idx, st));
            }
            fn on_thread_end(&mut self, _tid: u32) {
                self.ended = true;
            }
        }
        let mut pb = ProgramBuilder::new();
        let g = pb.global("g", 8);
        let k = pb.function("k", 1, |fb| {
            let v = fb.load(MemRef::global(g, None, 0, AccessSize::B8)); // inst 0: load
            fb.store(MemRef::global(g, None, 0, AccessSize::B8), v); // inst 1: store
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut m = Machine::new(&p, MachineConfig::new(k, 1)).unwrap();
        let mut rec = Recorder::default();
        m.run(&mut rec).unwrap();
        assert_eq!(rec.blocks.len(), 1);
        assert_eq!(rec.mems, vec![(0, false), (1, true)]);
        assert!(rec.ended);
    }
}
