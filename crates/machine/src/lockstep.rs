//! Warp-native lock-step execution — the "SIMT hardware" of this repo.
//!
//! Where the paper validates the analyzer against an NVIDIA H100 running
//! the CUDA implementation, this module executes the *same TFIR program*
//! natively in lock-step: warps of `warp_size` lanes driven by a hardware
//! SIMT reconvergence stack over the static per-function CFG (Fig. 2),
//! with per-instruction 32-byte-transaction coalescing (Fig. 4). The SIMT
//! efficiency and transaction counts measured here are the ground truth
//! the trace-based analyzer is correlated against (Fig. 5).
//!
//! Synchronization terminators are treated as fine-grain no-ops, matching
//! the paper's "fine-grain locking and a high-throughput concurrent memory
//! manager" assumption for SIMT hardware.

use crate::exec::{ExecCtx, MemAccess, Next, Trap};
use crate::heap::Heap;
use crate::layout::{segment_of, stack_floor, stack_top, Segment};
use crate::memory::Memory;
use crate::predecode::{ExecProgram, PInst};
use std::fmt;
use std::sync::Arc;
use threadfuser_ir::{BlockAddr, BlockId, FuncCfg, FuncId, Program, Reg};

/// Configuration of a lock-step run.
#[derive(Debug, Clone)]
pub struct LockstepConfig {
    /// Lanes per warp (8–64).
    pub warp_size: u32,
    /// Total logical threads; grouped linearly into warps.
    pub n_threads: u32,
    /// Kernel function; lane `t` receives `[t, extra...]`.
    pub kernel: FuncId,
    /// Extra kernel arguments shared by all lanes.
    pub extra_args: Vec<i64>,
    /// Optional zero-argument setup function executed single-laned first.
    pub init: Option<FuncId>,
    /// Lock-step issue budget (runaway guard).
    pub max_issues: u64,
}

impl LockstepConfig {
    /// Default configuration: warp size 32.
    pub fn new(kernel: FuncId, n_threads: u32) -> Self {
        LockstepConfig {
            warp_size: 32,
            n_threads,
            kernel,
            extra_args: Vec::new(),
            init: None,
            max_issues: 200_000_000,
        }
    }
}

/// Memory statistics for one segment (stack or heap).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentMemStats {
    /// 32-byte transactions issued.
    pub transactions: u64,
    /// Warp-level memory instructions touching this segment.
    pub instructions: u64,
    /// Individual lane accesses.
    pub accesses: u64,
}

impl SegmentMemStats {
    /// Average transactions per warp-level memory instruction.
    pub fn transactions_per_inst(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.transactions as f64 / self.instructions as f64
        }
    }
}

/// Ground-truth measurements from a lock-step run.
#[derive(Debug, Clone, Default)]
pub struct LockstepStats {
    /// Configured warp width.
    pub warp_size: u32,
    /// Lock-step issue slots consumed (denominator of Eq. 1, pre-widening).
    pub issues: u64,
    /// Per-thread instructions executed (numerator of Eq. 1).
    pub thread_insts: u64,
    /// Heap-segment (global-space) memory behaviour.
    pub heap: SegmentMemStats,
    /// Stack-segment (local-space) memory behaviour.
    pub stack: SegmentMemStats,
}

impl LockstepStats {
    /// SIMT efficiency per the paper's Equation 1.
    pub fn simt_efficiency(&self) -> f64 {
        if self.issues == 0 {
            1.0
        } else {
            self.thread_insts as f64 / (self.issues as f64 * self.warp_size as f64)
        }
    }

    /// Total 32-byte transactions across both segments.
    pub fn total_transactions(&self) -> u64 {
        self.heap.transactions + self.stack.transactions
    }
}

/// Errors terminating a lock-step run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockstepError {
    /// A lane trapped.
    Trapped {
        /// Faulting lane (global thread id).
        tid: u32,
        /// Block being executed.
        at: BlockAddr,
        /// The fault.
        trap: Trap,
    },
    /// Issue budget exceeded.
    Budget,
    /// The kernel's parameter count does not match `1 + extra_args.len()`.
    KernelArity {
        /// Declared parameters.
        expected: u16,
        /// Arguments passed.
        got: usize,
    },
}

impl fmt::Display for LockstepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockstepError::Trapped { tid, at, trap } => {
                write!(f, "lane {tid} trapped at {at}: {trap}")
            }
            LockstepError::Budget => write!(f, "lock-step issue budget exceeded"),
            LockstepError::KernelArity { expected, got } => {
                write!(f, "kernel expects {expected} params, got {got}")
            }
        }
    }
}

impl std::error::Error for LockstepError {}

#[derive(Debug)]
struct LaneFrame {
    regs: Vec<i64>,
    fp: u64,
    ret_dst: Option<Reg>,
    saved_sp: u64,
}

#[derive(Debug)]
struct Lane {
    tid: u32,
    frames: Vec<LaneFrame>,
    sp: u64,
}

/// SIMT reconvergence-stack entry (Fig. 2c).
#[derive(Debug, Clone, Copy)]
struct Entry {
    func: FuncId,
    /// CFG node: block index, or the function's virtual exit.
    node: usize,
    /// Reconvergence node within `func`.
    rpc: usize,
    mask: u64,
}

/// Executes a program warp-natively and reports ground-truth SIMT metrics.
///
/// ```
/// use threadfuser_ir::{ProgramBuilder, Operand};
/// use threadfuser_machine::{LockstepMachine, LockstepConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let out = pb.global("out", 8 * 64);
/// let k = pb.function("k", 1, |fb| {
///     let tid = fb.arg(0);
///     let dst = fb.global_ref(out, Operand::Reg(tid), 8);
///     fb.store(dst, tid);
///     fb.ret(None);
/// });
/// let p = pb.build().unwrap();
/// let mut cfg = LockstepConfig::new(k, 64);
/// cfg.warp_size = 32;
/// let stats = LockstepMachine::new(&p, cfg).unwrap().run().unwrap();
/// assert!((stats.simt_efficiency() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug)]
pub struct LockstepMachine<'p> {
    program: &'p Program,
    config: LockstepConfig,
    exec: Arc<ExecProgram>,
    memory: Memory,
    heap: Heap,
    cfgs: Arc<Vec<FuncCfg>>,
    stats: LockstepStats,
    seg_heap_scratch: Vec<(u64, u32)>,
    seg_stack_scratch: Vec<(u64, u32)>,
    lines_scratch: Vec<u64>,
}

impl<'p> LockstepMachine<'p> {
    /// Loads the program and precomputes per-function CFGs, IPDOMs, and
    /// the predecoded execution form.
    ///
    /// # Errors
    /// [`LockstepError::KernelArity`] on kernel signature mismatch.
    pub fn new(program: &'p Program, config: LockstepConfig) -> Result<Self, LockstepError> {
        let cfgs = program.functions().iter().map(FuncCfg::from_function).collect();
        Self::new_with_cfgs(program, config, Arc::new(cfgs))
    }

    /// [`LockstepMachine::new`] with prebuilt per-function CFGs — lets a
    /// caller that already solved them (e.g. an analysis index built for
    /// the same binary) share the solutions instead of re-deriving them.
    /// `cfgs` must hold one [`FuncCfg`] per program function, in order.
    ///
    /// # Errors
    /// [`LockstepError::KernelArity`] on kernel signature mismatch.
    pub fn new_with_cfgs(
        program: &'p Program,
        config: LockstepConfig,
        cfgs: Arc<Vec<FuncCfg>>,
    ) -> Result<Self, LockstepError> {
        let exec = Arc::new(ExecProgram::build(program));
        Self::new_with_parts(program, config, cfgs, exec)
    }

    /// [`LockstepMachine::new_with_cfgs`] with an additionally prebuilt
    /// predecoded program (both artifacts depend only on the program, so
    /// any machine over the same program may share them).
    ///
    /// # Errors
    /// [`LockstepError::KernelArity`] on kernel signature mismatch.
    pub fn new_with_parts(
        program: &'p Program,
        config: LockstepConfig,
        cfgs: Arc<Vec<FuncCfg>>,
        exec: Arc<ExecProgram>,
    ) -> Result<Self, LockstepError> {
        assert!((1..=64).contains(&config.warp_size), "warp size must be in 1..=64");
        assert_eq!(cfgs.len(), program.functions().len(), "one CFG per function");
        debug_assert!(exec.matches(program), "cached ExecProgram from another program");
        let kf = program.function(config.kernel);
        let got = 1 + config.extra_args.len();
        if kf.params as usize != got {
            return Err(LockstepError::KernelArity { expected: kf.params, got });
        }
        Ok(LockstepMachine {
            program,
            exec,
            memory: Memory::with_globals(program),
            heap: Heap::new(),
            cfgs,
            stats: LockstepStats { warp_size: config.warp_size, ..Default::default() },
            config,
            seg_heap_scratch: Vec::new(),
            seg_stack_scratch: Vec::new(),
            lines_scratch: Vec::new(),
        })
    }

    /// The machine's memory image (inspect results after [`Self::run`]).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The program this machine executes.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Runs init and then every warp to completion; returns ground-truth
    /// statistics.
    ///
    /// # Errors
    /// The first trap, or budget exhaustion.
    pub fn run(self) -> Result<LockstepStats, LockstepError> {
        self.run_full().map(|(stats, _)| stats)
    }

    /// [`Self::run`], additionally returning the final memory image so
    /// callers can compare lock-step results against MIMD execution.
    ///
    /// # Errors
    /// The first trap, or budget exhaustion.
    pub fn run_full(mut self) -> Result<(LockstepStats, Memory), LockstepError> {
        if let Some(init) = self.config.init {
            // Single-lane warp on the scratch stack slot; its issues do not
            // count toward kernel statistics.
            let before = self.stats.clone();
            self.run_warp(init, vec![(self.config.n_threads, Vec::new())])?;
            self.stats = before;
        }
        let w = self.config.warp_size;
        let mut t = 0u32;
        while t < self.config.n_threads {
            let hi = (t + w).min(self.config.n_threads);
            let lanes: Vec<(u32, Vec<i64>)> = (t..hi)
                .map(|tid| {
                    let mut args = vec![tid as i64];
                    args.extend_from_slice(&self.config.extra_args);
                    (tid, args)
                })
                .collect();
            self.run_warp(self.config.kernel, lanes)?;
            t = hi;
        }
        Ok((self.stats, self.memory))
    }

    fn cfg(&self, f: FuncId) -> &FuncCfg {
        &self.cfgs[f.0 as usize]
    }

    /// Executes one warp whose lanes all start `func` with the given
    /// per-lane arguments.
    fn run_warp(
        &mut self,
        func: FuncId,
        lanes_args: Vec<(u32, Vec<i64>)>,
    ) -> Result<(), LockstepError> {
        let exec = Arc::clone(&self.exec);
        let f = exec.func(func);
        let mut lanes: Vec<Lane> = lanes_args
            .into_iter()
            .map(|(tid, args)| {
                let top = stack_top(tid);
                let fp = align_down(top - f.frame_size as u64, 16);
                let mut regs = vec![0i64; f.reg_count as usize];
                regs[..args.len()].copy_from_slice(&args);
                Lane {
                    tid,
                    frames: vec![LaneFrame { regs, fp, ret_dst: None, saved_sp: top }],
                    sp: fp,
                }
            })
            .collect();
        let full_mask = if lanes.len() == 64 { u64::MAX } else { (1u64 << lanes.len()) - 1 };
        let mut stack: Vec<Entry> = vec![Entry {
            func,
            node: f.entry.0 as usize,
            rpc: self.cfg(func).virtual_exit(),
            mask: full_mask,
        }];

        let mut acc: Vec<MemAccess> = Vec::with_capacity(4);
        let mut warp_accesses: Vec<MemAccess> = Vec::new();
        while let Some(&top) = stack.last() {
            let cfg_exit = self.cfg(top.func).virtual_exit();
            // Lanes sitting at their reconvergence point merge into the
            // entry below (which executes that block with the wider mask).
            if top.node == top.rpc || top.node == cfg_exit {
                stack.pop();
                continue;
            }
            let block = exec.block(top.func, BlockId(top.node as u32));
            let addr = BlockAddr::new(top.func, BlockId(top.node as u32));
            let n_insts = block.n_insts as u64;
            let active: Vec<usize> = (0..lanes.len()).filter(|&l| top.mask >> l & 1 == 1).collect();
            debug_assert!(!active.is_empty(), "empty active mask on SIMT stack");

            self.stats.issues += n_insts;
            self.stats.thread_insts += n_insts * active.len() as u64;
            if self.stats.issues > self.config.max_issues {
                return Err(LockstepError::Budget);
            }

            // ---- body, one instruction across all active lanes ----------
            for inst in exec.insts(block) {
                if matches!(inst, PInst::Io { .. } | PInst::Nop) {
                    continue;
                }
                let collects_mem = inst.touches_memory();
                warp_accesses.clear();
                for &l in &active {
                    let lane = &mut lanes[l];
                    let frame = lane.frames.last_mut().expect("active lane has a frame");
                    acc.clear();
                    let mut ctx = ExecCtx {
                        regs: &mut frame.regs,
                        fp: frame.fp,
                        mem: &mut self.memory,
                        heap: &mut self.heap,
                    };
                    if let Err(trap) = ctx.exec_pinst(inst, &mut acc) {
                        return Err(LockstepError::Trapped { tid: lane.tid, at: addr, trap });
                    }
                    if collects_mem {
                        warp_accesses.extend_from_slice(&acc);
                    }
                }
                if collects_mem {
                    self.note_mem_inst(&warp_accesses);
                    warp_accesses.clear();
                }
            }

            // ---- terminator ---------------------------------------------
            let mut next_nodes: Vec<(usize, usize)> = Vec::with_capacity(active.len());
            let mut call: Option<(FuncId, BlockId, Option<Reg>)> = None;
            let mut call_args: Vec<(usize, crate::exec::CallArgs)> = Vec::new();
            warp_accesses.clear();
            for &l in &active {
                let lane = &mut lanes[l];
                let frame = lane.frames.last_mut().expect("active lane has a frame");
                acc.clear();
                let next = {
                    let mut ctx = ExecCtx {
                        regs: &mut frame.regs,
                        fp: frame.fp,
                        mem: &mut self.memory,
                        heap: &mut self.heap,
                    };
                    match ctx.eval_pterm(&block.term, &mut acc) {
                        Ok(n) => n,
                        Err(trap) => {
                            return Err(LockstepError::Trapped { tid: lane.tid, at: addr, trap })
                        }
                    }
                };
                warp_accesses.extend_from_slice(&acc);
                match next {
                    Next::Goto(b) => next_nodes.push((l, b.0 as usize)),
                    Next::Ret(val) => {
                        let finished = lane.frames.pop().expect("ret pops a frame");
                        lane.sp = finished.saved_sp;
                        if let Some(caller) = lane.frames.last_mut() {
                            if let (Some(dst), Some(v)) = (caller.ret_dst.take(), val) {
                                caller.regs[dst.0 as usize] = v;
                            }
                        }
                        next_nodes.push((l, cfg_exit));
                    }
                    Next::Call { callee, args, ret_to, dst } => {
                        call = Some((callee, ret_to, dst));
                        call_args.push((l, args));
                    }
                    // Fine-grain no-op synchronization on SIMT hardware.
                    Next::Acquire { next, .. }
                    | Next::Release { next, .. }
                    | Next::Barrier { next, .. } => next_nodes.push((l, next.0 as usize)),
                }
            }
            if !warp_accesses.is_empty() {
                self.note_mem_inst(&warp_accesses);
            }

            if let Some((callee, ret_to, dst)) = call {
                // All active lanes call together (direct calls only).
                let cf = exec.func(callee);
                for (l, args) in call_args {
                    let lane = &mut lanes[l];
                    {
                        let frame = lane.frames.last_mut().expect("frame");
                        frame.ret_dst = dst;
                    }
                    let saved_sp = lane.sp;
                    let fp = align_down(lane.sp - cf.frame_size as u64, 16);
                    if fp < stack_floor(lane.tid) {
                        return Err(LockstepError::Trapped {
                            tid: lane.tid,
                            at: addr,
                            trap: Trap::StackOverflow,
                        });
                    }
                    let mut regs = vec![0i64; cf.reg_count as usize];
                    regs[..args.len()].copy_from_slice(&args);
                    lane.frames.push(LaneFrame { regs, fp, ret_dst: None, saved_sp });
                    lane.sp = fp;
                }
                let top_mut = stack.last_mut().expect("stack nonempty");
                top_mut.node = ret_to.0 as usize;
                let callee_exit = self.cfg(callee).virtual_exit();
                stack.push(Entry {
                    func: callee,
                    node: cf.entry.0 as usize,
                    rpc: callee_exit,
                    mask: top.mask,
                });
                continue;
            }

            // Group lanes by next node.
            let mut groups: Vec<(usize, u64)> = Vec::new();
            for (l, node) in next_nodes {
                match groups.iter_mut().find(|(n, _)| *n == node) {
                    Some((_, m)) => *m |= 1 << l,
                    None => groups.push((node, 1 << l)),
                }
            }
            if groups.len() == 1 {
                let (node, _) = groups[0];
                if node == top.rpc {
                    stack.pop();
                } else {
                    stack.last_mut().expect("stack nonempty").node = node;
                }
            } else {
                // Divergence: reconverge at the IPDOM of the branch block.
                let ipd = self.cfg(top.func).ipdom_node(top.node).unwrap_or(cfg_exit);
                let parent_rpc = top.rpc;
                let parent_mask = top.mask;
                stack.pop();
                // Reconvergence entry; pops immediately if ipd == parent_rpc
                // (the node == rpc rule above), merging into the parent.
                stack.push(Entry { func: top.func, node: ipd, rpc: parent_rpc, mask: parent_mask });
                groups.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
                for (node, mask) in groups {
                    if node != ipd {
                        stack.push(Entry { func: top.func, node, rpc: ipd, mask });
                    }
                }
            }
        }
        Ok(())
    }

    /// Records coalescing statistics for one warp-level memory instruction.
    /// Uses persistent scratch buffers — no allocation on the hot path.
    fn note_mem_inst(&mut self, accesses: &[MemAccess]) {
        self.seg_heap_scratch.clear();
        self.seg_stack_scratch.clear();
        for a in accesses {
            match segment_of(a.addr) {
                Segment::Heap => self.seg_heap_scratch.push((a.addr, a.size)),
                Segment::Stack => self.seg_stack_scratch.push((a.addr, a.size)),
            }
        }
        if !self.seg_heap_scratch.is_empty() {
            self.stats.heap.instructions += 1;
            self.stats.heap.accesses += self.seg_heap_scratch.len() as u64;
            self.stats.heap.transactions += threadfuser_mem::coalesce_transactions_with(
                &mut self.lines_scratch,
                self.seg_heap_scratch.iter().copied(),
            ) as u64;
        }
        if !self.seg_stack_scratch.is_empty() {
            self.stats.stack.instructions += 1;
            self.stats.stack.accesses += self.seg_stack_scratch.len() as u64;
            self.stats.stack.transactions += threadfuser_mem::coalesce_transactions_with(
                &mut self.lines_scratch,
                self.seg_stack_scratch.iter().copied(),
            ) as u64;
        }
    }
}

fn align_down(v: u64, align: u64) -> u64 {
    v / align * align
}

#[cfg(test)]
mod tests {
    use super::*;
    use threadfuser_ir::{AluOp, Cond, Operand, ProgramBuilder};

    fn run(p: &Program, k: FuncId, n: u32, w: u32) -> LockstepStats {
        let mut cfg = LockstepConfig::new(k, n);
        cfg.warp_size = w;
        LockstepMachine::new(p, cfg).unwrap().run().unwrap()
    }

    #[test]
    fn uniform_kernel_is_fully_efficient() {
        let mut pb = ProgramBuilder::new();
        let out = pb.global("out", 8 * 128);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let v = fb.alu(AluOp::Mul, tid, 3i64);
            let dst = fb.global_ref(out, Operand::Reg(tid), 8);
            fb.store(dst, v);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let stats = run(&p, k, 128, 32);
        assert!((stats.simt_efficiency() - 1.0).abs() < 1e-12);
        // 128 threads × 8B adjacent stores; each warp's store coalesces into
        // 8 transactions → 32 total.
        assert_eq!(stats.heap.transactions, 32);
    }

    #[test]
    fn divergent_halves_lower_efficiency() {
        // Even lanes do extra work.
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let bit = fb.alu(AluOp::And, tid, 1i64);
            fb.if_then(Cond::Eq, bit, 0i64, |fb| {
                for _ in 0..50 {
                    fb.nop();
                }
            });
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let stats = run(&p, k, 32, 32);
        let eff = stats.simt_efficiency();
        assert!(eff < 0.9, "expected divergence loss, got {eff}");
        assert!(eff > 0.4, "half the lanes stay active, got {eff}");
    }

    #[test]
    fn reconvergence_at_ipdom_restores_full_mask() {
        // After an if/else both halves must re-join: total issues should be
        // far less than serializing the whole kernel per lane.
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let bit = fb.alu(AluOp::And, tid, 1i64);
            fb.if_then_else(Cond::Eq, bit, 0i64, |fb| fb.nop(), |fb| fb.nop());
            // Long convergent tail.
            for _ in 0..100 {
                fb.nop();
            }
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let stats = run(&p, k, 32, 32);
        assert!(
            stats.simt_efficiency() > 0.9,
            "tail executes reconverged, got {}",
            stats.simt_efficiency()
        );
    }

    #[test]
    fn efficiency_declines_with_warp_size() {
        // Data-dependent trip counts: thread t loops t%16 times.
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let n = fb.alu(AluOp::Rem, tid, 16i64);
            fb.for_range(0i64, Operand::Reg(n), 1, |fb, _| {
                fb.nop();
            });
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let e8 = run(&p, k, 64, 8).simt_efficiency();
        let e16 = run(&p, k, 64, 16).simt_efficiency();
        let e32 = run(&p, k, 64, 32).simt_efficiency();
        assert!(e8 >= e16 && e16 >= e32, "paper Fig. 1 trend: {e8} {e16} {e32}");
        assert!(e32 < 1.0);
    }

    #[test]
    fn calls_push_and_pop_in_lockstep() {
        let mut pb = ProgramBuilder::new();
        let out = pb.global("out", 8 * 32);
        let helper = pb.function("sq", 1, |fb| {
            let x = fb.arg(0);
            let v = fb.alu(AluOp::Mul, x, x);
            fb.ret(Some(Operand::Reg(v)));
        });
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let r = fb.call(helper, &[Operand::Reg(tid)]);
            let dst = fb.global_ref(out, Operand::Reg(tid), 8);
            fb.store(dst, r);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut cfg = LockstepConfig::new(k, 32);
        cfg.warp_size = 32;
        let m = LockstepMachine::new(&p, cfg).unwrap();
        let mem_probe = {
            let stats = m.run().unwrap();
            assert!((stats.simt_efficiency() - 1.0).abs() < 1e-12);
            stats
        };
        let _ = mem_probe;
    }

    #[test]
    fn divergent_returns_converge_at_virtual_exit() {
        // Odd lanes return early; even lanes do work first. Both must pop
        // cleanly through the virtual exit.
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let bit = fb.alu(AluOp::And, tid, 1i64);
            let early = fb.new_block();
            let work = fb.new_block();
            fb.br(Cond::Ne, bit, 0i64, early, work);
            fb.switch_to(early);
            fb.ret(None);
            fb.switch_to(work);
            for _ in 0..10 {
                fb.nop();
            }
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let stats = run(&p, k, 32, 32);
        assert!(stats.simt_efficiency() < 1.0);
        assert!(stats.issues > 0);
    }

    #[test]
    fn stack_accesses_split_from_heap() {
        let mut pb = ProgramBuilder::new();
        let out = pb.global("out", 8 * 32);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let v = fb.var(8); // frame slot → stack segment
            fb.store_var(v, tid);
            let r = fb.load_var(v);
            let dst = fb.global_ref(out, Operand::Reg(tid), 8);
            fb.store(dst, r); // heap segment
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let stats = run(&p, k, 32, 32);
        assert!(stats.stack.transactions > 0);
        assert!(stats.heap.transactions > 0);
        // Private stacks are 1 MiB apart: every lane's slot is its own
        // transaction → 32 per stack instruction.
        assert_eq!(stats.stack.transactions_per_inst(), 32.0);
        // Adjacent 8B heap stores coalesce to 8 per instruction.
        assert_eq!(stats.heap.transactions_per_inst(), 8.0);
    }

    #[test]
    fn partial_last_warp_handled() {
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            fb.nop();
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let stats = run(&p, k, 40, 32); // 32 + 8
                                        // Two warps execute the same 1-block kernel: the partial warp halves
                                        // reported efficiency for its issues.
        let expect = (40.0) / (2.0 * 2.0 * 32.0) * 2.0; // thread_insts / (issues*W)
        assert!((stats.simt_efficiency() - expect).abs() < 1e-9);
    }

    #[test]
    fn budget_guard_fires() {
        let mut pb = ProgramBuilder::new();
        let k = pb.function("k", 1, |fb| {
            let b = fb.current_block();
            fb.nop();
            fb.jmp(b);
        });
        let p = pb.build().unwrap();
        let mut cfg = LockstepConfig::new(k, 1);
        cfg.max_issues = 1000;
        let err = LockstepMachine::new(&p, cfg).unwrap().run().unwrap_err();
        assert_eq!(err, LockstepError::Budget);
    }

    #[test]
    fn init_runs_but_does_not_count() {
        let mut pb = ProgramBuilder::new();
        let data = pb.global("data", 8);
        let init = pb.function("setup", 0, |fb| {
            fb.store(
                threadfuser_ir::MemRef::global(data, None, 0, threadfuser_ir::AccessSize::B8),
                99i64,
            );
            fb.ret(None);
        });
        let out = pb.global("out", 8 * 4);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let v = fb.load(threadfuser_ir::MemRef::global(
                data,
                None,
                0,
                threadfuser_ir::AccessSize::B8,
            ));
            let dst = fb.global_ref(out, Operand::Reg(tid), 8);
            fb.store(dst, v);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let mut cfg = LockstepConfig::new(k, 4);
        cfg.warp_size = 4;
        cfg.init = Some(init);
        let stats = LockstepMachine::new(&p, cfg).unwrap().run().unwrap();
        assert!((stats.simt_efficiency() - 1.0).abs() < 1e-12);
    }
}
