//! Sparse byte-addressable memory.
//!
//! Pages materialize on first touch and read as zero before any write,
//! which also defines the semantics of uninitialized frame slots (zero) on
//! which the register-promotion pass relies.

use crate::layout::GLOBAL_BASE;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use threadfuser_ir::{GlobalId, Program};

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Multiply-shift hasher for page numbers. Page lookups sit on the hot
/// path of every load and store; the default SipHash costs more than the
/// copy it guards. Page numbers are program addresses (not attacker
/// controlled), so a fixed odd multiplier is fine.
#[derive(Debug, Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only used through `write_u64` by the page map; keep a correct
        // fallback anyway.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 29);
    }
}

type PageMap = HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>;

/// Sparse memory image plus the resolved addresses of program globals.
#[derive(Debug, Default)]
pub struct Memory {
    pages: PageMap,
    global_addrs: Vec<u64>,
}

/// Addresses at which `program`'s globals load: consecutive, 64-byte
/// aligned, from [`GLOBAL_BASE`], in declaration order. This layout is a
/// pure function of the program, which is what lets the predecoded
/// execution engine bake absolute global addresses into its operands.
pub fn global_layout(program: &Program) -> Vec<u64> {
    let mut addrs = Vec::with_capacity(program.globals().len());
    let mut cursor = GLOBAL_BASE;
    for g in program.globals() {
        addrs.push(cursor);
        cursor += g.size.div_ceil(64) * 64;
    }
    addrs
}

impl Memory {
    /// Creates an empty memory with no globals loaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a memory image with `program`'s globals placed consecutively
    /// (64-byte aligned) from [`GLOBAL_BASE`]; see [`global_layout`].
    pub fn with_globals(program: &Program) -> Self {
        let mut mem = Memory::new();
        mem.global_addrs = global_layout(program);
        for (i, g) in program.globals().iter().enumerate() {
            if !g.init.is_empty() {
                let addr = mem.global_addrs[i];
                mem.write_bytes(addr, &g.init);
            }
        }
        mem
    }

    /// Resolved address of a global.
    ///
    /// # Panics
    /// Panics if `g` is out of range for the loaded program.
    pub fn global_addr(&self, g: GlobalId) -> u64 {
        self.global_addrs[g.0 as usize]
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(page).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads `size` (1/2/4/8) bytes little-endian, zero-extended to `u64`.
    #[inline]
    pub fn read(&self, addr: u64, size: u32) -> u64 {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let in_page = (addr & (PAGE_SIZE as u64 - 1)) as usize;
        let size = size as usize;
        // Hot path: the access sits inside one page (accesses are small
        // and mostly aligned, so this is nearly every access).
        if in_page + size <= PAGE_SIZE {
            return match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..size].copy_from_slice(&p[in_page..in_page + size]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            };
        }
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf[..size]);
        u64::from_le_bytes(buf)
    }

    /// Writes the low `size` (1/2/4/8) bytes of `value` little-endian.
    #[inline]
    pub fn write(&mut self, addr: u64, size: u32, value: u64) {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let in_page = (addr & (PAGE_SIZE as u64 - 1)) as usize;
        let size = size as usize;
        let bytes = value.to_le_bytes();
        if in_page + size <= PAGE_SIZE {
            let page = self.page_mut(addr >> PAGE_SHIFT);
            page[in_page..in_page + size].copy_from_slice(&bytes[..size]);
            return;
        }
        self.write_bytes(addr, &bytes[..size]);
    }

    /// Reads a byte range (zero for untouched pages).
    pub fn read_bytes(&self, addr: u64, out: &mut [u8]) {
        let mut a = addr;
        let mut off = 0usize;
        while off < out.len() {
            let page = a >> PAGE_SHIFT;
            let in_page = (a & (PAGE_SIZE as u64 - 1)) as usize;
            let n = (PAGE_SIZE - in_page).min(out.len() - off);
            match self.pages.get(&page) {
                Some(p) => out[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => out[off..off + n].fill(0),
            }
            a += n as u64;
            off += n;
        }
    }

    /// Writes a byte range.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let mut a = addr;
        let mut off = 0usize;
        while off < data.len() {
            let page = a >> PAGE_SHIFT;
            let in_page = (a & (PAGE_SIZE as u64 - 1)) as usize;
            let n = (PAGE_SIZE - in_page).min(data.len() - off);
            self.page_mut(page)[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            a += n as u64;
            off += n;
        }
    }

    /// Number of materialized pages (memory footprint proxy).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0xdead_beef, 8), 0);
    }

    #[test]
    fn round_trip_all_sizes() {
        let mut m = Memory::new();
        for (size, val) in
            [(1u32, 0xABu64), (2, 0xBEEF), (4, 0xDEAD_BEEF), (8, 0x0123_4567_89AB_CDEF)]
        {
            m.write(0x100, size, val);
            assert_eq!(m.read(0x100, size), val);
        }
    }

    #[test]
    fn narrow_write_does_not_clobber_neighbors() {
        let mut m = Memory::new();
        m.write(0x100, 8, u64::MAX);
        m.write(0x100, 1, 0);
        assert_eq!(m.read(0x100, 8), u64::MAX << 8);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles page 0 and 1
        m.write(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn globals_load_at_stable_addresses() {
        let mut pb = threadfuser_ir::ProgramBuilder::new();
        let a = pb.global_i64("a", &[7, 8]);
        let b = pb.global("b", 10);
        pb.function("noop", 0, |fb| fb.ret(None));
        let p = pb.build().unwrap();
        let m = Memory::with_globals(&p);
        assert_eq!(m.global_addr(a), GLOBAL_BASE);
        assert_eq!(m.read(m.global_addr(a), 8), 7);
        assert_eq!(m.read(m.global_addr(a) + 8, 8), 8);
        assert!(m.global_addr(b) >= GLOBAL_BASE + 16);
        assert_eq!(m.global_addr(b) % 64, 0);
    }
}
