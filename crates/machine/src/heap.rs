//! Heap allocator for the simulated machine.
//!
//! Size-class bump allocation with per-class free lists: freed chunks are
//! recycled LIFO within their class, never coalesced. This reproduces the
//! "memory manager allocating scattered data chunks in the heap segment"
//! the paper identifies as a source of memory divergence (Fig. 10).

use crate::layout::{HEAP_BASE, HEAP_SIZE};
use std::collections::HashMap;

const MIN_CLASS: u64 = 16;

/// Simulated heap allocator.
#[derive(Debug)]
pub struct Heap {
    next: u64,
    end: u64,
    free: HashMap<u64, Vec<u64>>,
    live: HashMap<u64, u64>,
    allocs: u64,
    frees: u64,
}

/// Errors from heap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The heap region is exhausted.
    OutOfMemory,
    /// `free` of an address that is not a live allocation.
    InvalidFree(u64),
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory => write!(f, "simulated heap exhausted"),
            HeapError::InvalidFree(a) => write!(f, "free of non-live address {a:#x}"),
        }
    }
}

impl std::error::Error for HeapError {}

impl Default for Heap {
    fn default() -> Self {
        Self::new()
    }
}

impl Heap {
    /// Creates an empty heap covering the standard heap region.
    pub fn new() -> Self {
        Heap {
            next: HEAP_BASE,
            end: HEAP_BASE + HEAP_SIZE,
            free: HashMap::new(),
            live: HashMap::new(),
            allocs: 0,
            frees: 0,
        }
    }

    fn class_of(size: u64) -> u64 {
        size.max(MIN_CLASS).next_power_of_two()
    }

    /// Allocates `size` bytes (rounded up to a power-of-two class).
    ///
    /// # Errors
    /// [`HeapError::OutOfMemory`] when the region is exhausted.
    pub fn alloc(&mut self, size: u64) -> Result<u64, HeapError> {
        let class = Self::class_of(size);
        self.allocs += 1;
        if let Some(addr) = self.free.get_mut(&class).and_then(Vec::pop) {
            self.live.insert(addr, class);
            return Ok(addr);
        }
        if self.next + class > self.end {
            return Err(HeapError::OutOfMemory);
        }
        let addr = self.next;
        self.next += class;
        self.live.insert(addr, class);
        Ok(addr)
    }

    /// Returns an allocation to its size-class free list.
    ///
    /// # Errors
    /// [`HeapError::InvalidFree`] when `addr` is not a live allocation.
    pub fn free(&mut self, addr: u64) -> Result<(), HeapError> {
        let class = self.live.remove(&addr).ok_or(HeapError::InvalidFree(addr))?;
        self.frees += 1;
        self.free.entry(class).or_default().push(addr);
        Ok(())
    }

    /// Total successful allocations.
    pub fn alloc_count(&self) -> u64 {
        self.allocs
    }

    /// Total frees.
    pub fn free_count(&self) -> u64 {
        self.frees
    }

    /// Currently live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut h = Heap::new();
        let a = h.alloc(24).unwrap();
        let b = h.alloc(24).unwrap();
        assert_ne!(a, b);
        assert!(b >= a + 32, "24B rounds to the 32B class");
        assert_eq!(a % MIN_CLASS, 0);
    }

    #[test]
    fn free_then_alloc_recycles_lifo() {
        let mut h = Heap::new();
        let a = h.alloc(64).unwrap();
        let b = h.alloc(64).unwrap();
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.alloc(64).unwrap(), b, "LIFO recycling");
        assert_eq!(h.alloc(64).unwrap(), a);
    }

    #[test]
    fn classes_do_not_mix() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(128).unwrap();
        assert_ne!(a, b, "a 16B chunk cannot satisfy a 128B request");
    }

    #[test]
    fn double_free_rejected() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(HeapError::InvalidFree(a)));
    }

    #[test]
    fn counters_track_operations() {
        let mut h = Heap::new();
        let a = h.alloc(16).unwrap();
        let _b = h.alloc(16).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.alloc_count(), 2);
        assert_eq!(h.free_count(), 1);
        assert_eq!(h.live_count(), 1);
    }
}
