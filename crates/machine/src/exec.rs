//! The shared single-instruction executor.
//!
//! Both execution modes — the MIMD multicore machine (`mimd`) and the
//! lock-step warp-native executor (`lockstep`) — drive threads/lanes
//! through this module, guaranteeing identical instruction semantics on
//! both sides of the correlation study.

use crate::heap::{Heap, HeapError};
use crate::memory::Memory;
use threadfuser_ir::{Base, BlockId, FuncId, Inst, MemRef, Operand, Reg, Terminator};

/// One dynamic memory access performed by an instruction or terminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u64,
    /// Width in bytes.
    pub size: u32,
    /// Store (`true`) or load (`false`).
    pub is_store: bool,
}

/// Run-time faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Access below the null guard page.
    NullDeref(u64),
    /// Simulated heap exhausted.
    OutOfMemory,
    /// `free` of a non-live address.
    InvalidFree(u64),
    /// Thread stack exhausted.
    StackOverflow,
    /// Instruction budget exceeded (runaway program).
    Budget,
    /// A mutex was re-acquired by its owner.
    RecursiveLock(u64),
    /// A mutex was released by a non-owner.
    ReleaseUnheld(u64),
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::NullDeref(a) => write!(f, "null-page access at {a:#x}"),
            Trap::OutOfMemory => write!(f, "simulated heap exhausted"),
            Trap::InvalidFree(a) => write!(f, "invalid free of {a:#x}"),
            Trap::StackOverflow => write!(f, "thread stack overflow"),
            Trap::Budget => write!(f, "instruction budget exceeded"),
            Trap::RecursiveLock(a) => write!(f, "recursive acquire of lock {a:#x}"),
            Trap::ReleaseUnheld(a) => write!(f, "release of unheld lock {a:#x}"),
        }
    }
}

impl std::error::Error for Trap {}

impl From<HeapError> for Trap {
    fn from(e: HeapError) -> Self {
        match e {
            HeapError::OutOfMemory => Trap::OutOfMemory,
            HeapError::InvalidFree(a) => Trap::InvalidFree(a),
        }
    }
}

/// Evaluated call-argument values.
///
/// Calls sit on the hot path of call-heavy workloads, and almost every
/// call passes only a handful of words, so the common case lives inline
/// with no heap allocation; longer lists spill to a `Vec`. Dereferences
/// to `[i64]`.
#[derive(Debug, Clone, Eq)]
pub enum CallArgs {
    /// At most [`CallArgs::INLINE`] values, stored in place.
    Inline {
        /// Backing store; only the first `len` entries are meaningful.
        buf: [i64; CallArgs::INLINE],
        /// Number of live values in `buf`.
        len: u8,
    },
    /// More than [`CallArgs::INLINE`] values.
    Spilled(Vec<i64>),
}

impl CallArgs {
    /// Capacity of the inline representation.
    pub const INLINE: usize = 8;

    /// Empty list with room for `n` values without reallocating.
    pub fn with_capacity(n: usize) -> Self {
        if n <= Self::INLINE {
            CallArgs::Inline { buf: [0; Self::INLINE], len: 0 }
        } else {
            CallArgs::Spilled(Vec::with_capacity(n))
        }
    }

    /// Appends a value, spilling to the heap if the inline buffer fills.
    pub fn push(&mut self, v: i64) {
        match self {
            CallArgs::Inline { buf, len } if (*len as usize) < Self::INLINE => {
                buf[*len as usize] = v;
                *len += 1;
            }
            CallArgs::Inline { buf, len } => {
                let mut spill = buf[..*len as usize].to_vec();
                spill.push(v);
                *self = CallArgs::Spilled(spill);
            }
            CallArgs::Spilled(v2) => v2.push(v),
        }
    }
}

impl std::ops::Deref for CallArgs {
    type Target = [i64];

    fn deref(&self) -> &[i64] {
        match self {
            CallArgs::Inline { buf, len } => &buf[..*len as usize],
            CallArgs::Spilled(v) => v,
        }
    }
}

impl PartialEq for CallArgs {
    fn eq(&self, other: &Self) -> bool {
        // Representation-independent: an inline list equals a spilled
        // list with the same values.
        **self == **other
    }
}

/// Control transfer produced by a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Next {
    /// Continue at a block in the same function.
    Goto(BlockId),
    /// Call with evaluated arguments.
    Call {
        /// Callee function.
        callee: FuncId,
        /// Evaluated argument values.
        args: CallArgs,
        /// Caller continuation block.
        ret_to: BlockId,
        /// Register in the caller receiving the return value.
        dst: Option<Reg>,
    },
    /// Return with an optional value.
    Ret(Option<i64>),
    /// Acquire the mutex at the given address, then continue.
    Acquire {
        /// Lock address.
        lock: u64,
        /// Successor block.
        next: BlockId,
    },
    /// Release the mutex at the given address, then continue.
    Release {
        /// Lock address.
        lock: u64,
        /// Successor block.
        next: BlockId,
    },
    /// Wait at barrier `id`, then continue.
    Barrier {
        /// Barrier identity.
        id: u32,
        /// Successor block.
        next: BlockId,
    },
}

/// Execution context of one thread (or lane): its register frame, frame
/// pointer, and the shared memory/heap.
#[derive(Debug)]
pub struct ExecCtx<'a> {
    /// Current function's register frame.
    pub regs: &'a mut [i64],
    /// Current frame pointer.
    pub fp: u64,
    /// Shared memory image.
    pub mem: &'a mut Memory,
    /// Shared heap allocator.
    pub heap: &'a mut Heap,
}

const NULL_GUARD: u64 = 0x1000;

impl ExecCtx<'_> {
    fn addr_of(&self, m: &MemRef) -> u64 {
        let base = match m.base {
            Base::None => 0,
            Base::Reg(r) => self.regs[r.0 as usize] as u64,
            Base::Frame => self.fp,
            Base::Global(g) => self.mem.global_addr(g),
        };
        let index = match m.index {
            Some((r, scale)) => (self.regs[r.0 as usize] as u64).wrapping_mul(scale as u64),
            None => 0,
        };
        base.wrapping_add(index).wrapping_add(m.disp as u64)
    }

    fn value(&mut self, op: &Operand, acc: &mut Vec<MemAccess>) -> Result<i64, Trap> {
        match op {
            Operand::Reg(r) => Ok(self.regs[r.0 as usize]),
            Operand::Imm(v) => Ok(*v),
            Operand::Mem(m) => {
                let addr = self.addr_of(m);
                if addr < NULL_GUARD {
                    return Err(Trap::NullDeref(addr));
                }
                let size = m.size.bytes() as u32;
                acc.push(MemAccess { addr, size, is_store: false });
                Ok(self.mem.read(addr, size) as i64)
            }
        }
    }

    /// Executes one straight-line instruction, appending its memory
    /// accesses to `acc`.
    ///
    /// [`Inst::Io`] and [`Inst::Nop`] are semantic no-ops here; the caller
    /// accounts for skipped I/O cost.
    ///
    /// # Errors
    /// Returns a [`Trap`] on run-time faults.
    pub fn exec_inst(&mut self, inst: &Inst, acc: &mut Vec<MemAccess>) -> Result<(), Trap> {
        match inst {
            Inst::Alu { op, dst, a, b } => {
                let av = self.value(a, acc)?;
                let bv = self.value(b, acc)?;
                let v = op.eval(av, bv).ok_or(Trap::DivByZero)?;
                self.regs[dst.0 as usize] = v;
            }
            Inst::Mov { dst, src } => {
                let v = self.value(src, acc)?;
                self.regs[dst.0 as usize] = v;
            }
            Inst::Store { addr, src } => {
                let v = self.value(src, acc)?;
                let a = self.addr_of(addr);
                if a < NULL_GUARD {
                    return Err(Trap::NullDeref(a));
                }
                let size = addr.size.bytes() as u32;
                acc.push(MemAccess { addr: a, size, is_store: true });
                self.mem.write(a, size, v as u64);
            }
            Inst::Lea { dst, addr } => {
                self.regs[dst.0 as usize] = self.addr_of(addr) as i64;
            }
            Inst::Alloc { dst, size } => {
                let n = self.value(size, acc)?;
                let ptr = self.heap.alloc(n.max(1) as u64)?;
                self.regs[dst.0 as usize] = ptr as i64;
            }
            Inst::Free { addr } => {
                let a = self.value(addr, acc)?;
                self.heap.free(a as u64)?;
            }
            Inst::Io { .. } | Inst::Nop => {}
        }
        Ok(())
    }

    /// Evaluates a terminator to the resulting control transfer, appending
    /// memory accesses (branch comparisons may carry a memory operand).
    ///
    /// # Errors
    /// Returns a [`Trap`] on run-time faults.
    pub fn eval_term(&mut self, term: &Terminator, acc: &mut Vec<MemAccess>) -> Result<Next, Trap> {
        Ok(match term {
            Terminator::Jmp(t) => Next::Goto(*t),
            Terminator::Br { cond, a, b, taken, fallthrough } => {
                let av = self.value(a, acc)?;
                let bv = self.value(b, acc)?;
                Next::Goto(if cond.eval(av, bv) { *taken } else { *fallthrough })
            }
            Terminator::Switch { val, base, targets, default } => {
                let v = self.value(val, acc)?;
                let idx = v.wrapping_sub(*base);
                let t = if idx >= 0 && (idx as usize) < targets.len() {
                    targets[idx as usize]
                } else {
                    *default
                };
                Next::Goto(t)
            }
            Terminator::Call { callee, args, ret_to, dst } => {
                let mut vals = CallArgs::with_capacity(args.len());
                for a in args {
                    vals.push(self.value(a, acc)?);
                }
                Next::Call { callee: *callee, args: vals, ret_to: *ret_to, dst: *dst }
            }
            Terminator::Ret { val } => {
                let v = match val {
                    Some(v) => Some(self.value(v, acc)?),
                    None => None,
                };
                Next::Ret(v)
            }
            Terminator::Acquire { lock, next } => {
                let l = self.value(lock, acc)? as u64;
                Next::Acquire { lock: l, next: *next }
            }
            Terminator::Release { lock, next } => {
                let l = self.value(lock, acc)? as u64;
                Next::Release { lock: l, next: *next }
            }
            Terminator::Barrier { id, next } => Next::Barrier { id: *id, next: *next },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threadfuser_ir::{AccessSize, AluOp, Cond};

    fn ctx<'a>(regs: &'a mut [i64], mem: &'a mut Memory, heap: &'a mut Heap) -> ExecCtx<'a> {
        ExecCtx { regs, fp: crate::layout::stack_top(0) - 64, mem, heap }
    }

    #[test]
    fn alu_with_memory_operand_records_access() {
        let mut regs = vec![0i64; 4];
        let mut mem = Memory::new();
        let mut heap = Heap::new();
        let fp = crate::layout::stack_top(0) - 64;
        mem.write(fp + 8, 8, 5);
        let mut c = ctx(&mut regs, &mut mem, &mut heap);
        let mut acc = Vec::new();
        c.exec_inst(
            &Inst::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Imm(2),
                b: Operand::Mem(MemRef::frame(8, AccessSize::B8)),
            },
            &mut acc,
        )
        .unwrap();
        assert_eq!(regs[0], 7);
        assert_eq!(acc.len(), 1);
        assert!(!acc[0].is_store);
        assert_eq!(acc[0].addr, fp + 8);
    }

    #[test]
    fn store_and_reload() {
        let mut regs = vec![9i64; 4];
        let mut mem = Memory::new();
        let mut heap = Heap::new();
        let mut c = ctx(&mut regs, &mut mem, &mut heap);
        let mut acc = Vec::new();
        let slot = MemRef::frame(16, AccessSize::B8);
        c.exec_inst(&Inst::Store { addr: slot, src: Operand::Imm(42) }, &mut acc).unwrap();
        c.exec_inst(&Inst::Mov { dst: Reg(1), src: Operand::Mem(slot) }, &mut acc).unwrap();
        assert_eq!(regs[1], 42);
        assert_eq!(acc.len(), 2);
        assert!(acc[0].is_store && !acc[1].is_store);
    }

    #[test]
    fn div_by_zero_traps() {
        let mut regs = vec![0i64; 2];
        let mut mem = Memory::new();
        let mut heap = Heap::new();
        let mut c = ctx(&mut regs, &mut mem, &mut heap);
        let err = c
            .exec_inst(
                &Inst::Alu { op: AluOp::Div, dst: Reg(0), a: Operand::Imm(1), b: Operand::Imm(0) },
                &mut Vec::new(),
            )
            .unwrap_err();
        assert_eq!(err, Trap::DivByZero);
    }

    #[test]
    fn null_deref_traps() {
        let mut regs = vec![0i64; 2];
        let mut mem = Memory::new();
        let mut heap = Heap::new();
        let mut c = ctx(&mut regs, &mut mem, &mut heap);
        let err = c
            .exec_inst(
                &Inst::Mov {
                    dst: Reg(0),
                    src: Operand::Mem(MemRef::reg(Reg(1), 8, AccessSize::B8)),
                },
                &mut Vec::new(),
            )
            .unwrap_err();
        assert!(matches!(err, Trap::NullDeref(8)));
    }

    #[test]
    fn branch_picks_side_and_records_mem_operand() {
        let mut regs = vec![3i64; 2];
        let mut mem = Memory::new();
        let mut heap = Heap::new();
        let fp = crate::layout::stack_top(0) - 64;
        mem.write(fp, 8, 10);
        let mut c = ctx(&mut regs, &mut mem, &mut heap);
        let mut acc = Vec::new();
        let next = c
            .eval_term(
                &Terminator::Br {
                    cond: Cond::Lt,
                    a: Operand::Reg(Reg(0)),
                    b: Operand::Mem(MemRef::frame(0, AccessSize::B8)),
                    taken: BlockId(1),
                    fallthrough: BlockId(2),
                },
                &mut acc,
            )
            .unwrap();
        assert_eq!(next, Next::Goto(BlockId(1)));
        assert_eq!(acc.len(), 1);
    }

    #[test]
    fn switch_in_and_out_of_range() {
        let mut regs = vec![0i64; 2];
        let mut mem = Memory::new();
        let mut heap = Heap::new();
        let term = Terminator::Switch {
            val: Operand::Reg(Reg(0)),
            base: 10,
            targets: vec![BlockId(1), BlockId(2)],
            default: BlockId(9),
        };
        let mut c = ctx(&mut regs, &mut mem, &mut heap);
        c.regs[0] = 11;
        assert_eq!(c.eval_term(&term, &mut Vec::new()).unwrap(), Next::Goto(BlockId(2)));
        c.regs[0] = 5;
        assert_eq!(c.eval_term(&term, &mut Vec::new()).unwrap(), Next::Goto(BlockId(9)));
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut regs = vec![0i64; 2];
        let mut mem = Memory::new();
        let mut heap = Heap::new();
        let mut c = ctx(&mut regs, &mut mem, &mut heap);
        c.exec_inst(&Inst::Alloc { dst: Reg(0), size: Operand::Imm(100) }, &mut Vec::new())
            .unwrap();
        let ptr = regs[0];
        assert!(ptr as u64 >= crate::layout::HEAP_BASE);
        let mut c = ctx(&mut regs, &mut mem, &mut heap);
        c.exec_inst(&Inst::Free { addr: Operand::Reg(Reg(0)) }, &mut Vec::new()).unwrap();
        let mut c = ctx(&mut regs, &mut mem, &mut heap);
        let err =
            c.exec_inst(&Inst::Free { addr: Operand::Reg(Reg(0)) }, &mut Vec::new()).unwrap_err();
        assert_eq!(err, Trap::InvalidFree(ptr as u64));
    }
}
