#![warn(missing_docs)]

//! # XAPP-style baseline predictor (paper Table II)
//!
//! The closest prior work to ThreadFuser is XAPP (Ardalani et al., MICRO
//! 2015): an opaque machine-learning model that predicts GPU speedup from
//! ~16 profile-based properties of a *single-threaded* CPU execution. This
//! crate reimplements that approach as the comparison baseline: a ridge-
//! regularized linear regression over 16 dynamic program features
//! extracted from one thread's trace.
//!
//! Where ThreadFuser emulates the SIMT stack and reports white-box
//! efficiency/divergence breakdowns, XAPP emits a single speedup number —
//! reproducing the qualitative contrast of Table II.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use threadfuser_ir::Program;
use threadfuser_tracer::{TraceEvent, TraceSet};

/// Number of profile features (matching XAPP's 16 program properties).
pub const N_FEATURES: usize = 16;

/// A dense feature vector extracted from a single-threaded profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector(pub [f64; N_FEATURES]);

/// Extracts the 16 XAPP-style properties from the first thread's trace.
///
/// Features: instruction-class mix (5), block shape (3), memory behaviour
/// (5), call/synchronization density (2), and scale (1).
///
/// # Panics
/// Panics if `traces` is empty.
pub fn extract_features(program: &Program, traces: &TraceSet) -> FeatureVector {
    let t = traces.threads().first().expect("at least one thread trace");
    let mut insts = 0u64;
    let mut blocks = 0u64;
    let mut distinct_blocks = HashSet::new();
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut stack_accesses = 0u64;
    let mut calls = 0u64;
    let mut syncs = 0u64;
    let mut addrs: Vec<u64> = Vec::new();
    let mut bytes_touched = 0u64;

    for e in t.iter_events() {
        match e {
            TraceEvent::Block { addr, n_insts } => {
                blocks += 1;
                insts += n_insts as u64;
                distinct_blocks.insert(addr);
            }
            TraceEvent::Mem { addr, size, is_store, .. } => {
                if is_store {
                    stores += 1;
                } else {
                    loads += 1;
                }
                if is_stack_segment(addr) {
                    stack_accesses += 1;
                }
                addrs.push(addr);
                bytes_touched += size as u64;
            }
            TraceEvent::Call { .. } => calls += 1,
            TraceEvent::Ret => {}
            TraceEvent::Acquire { .. }
            | TraceEvent::Release { .. }
            | TraceEvent::Barrier { .. } => {
                syncs += 1;
            }
        }
    }

    let fi = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
    let mem = loads + stores;
    // Spatial locality proxy: fraction of consecutive accesses within 64 B.
    let mut near = 0u64;
    for w in addrs.windows(2) {
        if w[1].abs_diff(w[0]) <= 64 {
            near += 1;
        }
    }
    let unique_lines: HashSet<u64> = addrs.iter().map(|a| a / 32).collect();

    let static_insts = program.static_inst_count().max(1);
    let f = [
        fi(mem, insts),                                  // 0 memory intensity
        fi(loads, mem.max(1)),                           // 1 load share
        fi(stores, mem.max(1)),                          // 2 store share
        fi(blocks, insts),                               // 3 branch density (1/blocksize)
        fi(insts, blocks.max(1)) / 32.0,                 // 4 normalized block size
        fi(distinct_blocks.len() as u64, blocks.max(1)), // 5 code-reuse / loopiness
        fi(distinct_blocks.len() as u64, static_insts),  // 6 coverage of static code
        fi(near, addrs.len().max(1) as u64),             // 7 spatial locality
        fi(unique_lines.len() as u64, mem.max(1)),       // 8 footprint per access
        fi(stack_accesses, mem.max(1)),                  // 9 stack share
        fi(calls, blocks.max(1)),                        // 10 call density
        fi(syncs, blocks.max(1)),                        // 11 sync density
        fi(t.skipped_io + t.skipped_spin, insts.max(1)), // 12 skipped share
        (insts as f64).ln().max(0.0) / 20.0,             // 13 work scale (log)
        fi(bytes_touched, mem.max(1) * 8),               // 14 access width
        1.0,                                             // 15 bias
    ];
    FeatureVector(f)
}

// Local copy of the segment rule (keeps this crate's dependency surface to
// ir + tracer; the layout is stable: stacks live at and above
// 0x1_0000_0000).
fn is_stack_segment(addr: u64) -> bool {
    addr >= 0x1_0000_0000
}

/// Ridge-regularized linear model over [`FeatureVector`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XappModel {
    weights: [f64; N_FEATURES],
}

impl XappModel {
    /// Fits ridge regression (`lambda` > 0 recommended) by solving the
    /// normal equations with Gaussian elimination.
    ///
    /// # Panics
    /// Panics on an empty training set.
    #[allow(clippy::needless_range_loop)]
    pub fn train(samples: &[(FeatureVector, f64)], lambda: f64) -> Self {
        assert!(!samples.is_empty(), "empty training set");
        let n = N_FEATURES;
        // A = X^T X + lambda I ; b = X^T y
        let mut a = vec![vec![0.0f64; n]; n];
        let mut b = vec![0.0f64; n];
        for (fv, y) in samples {
            for i in 0..n {
                b[i] += fv.0[i] * y;
                for j in 0..n {
                    a[i][j] += fv.0[i] * fv.0[j];
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += lambda;
        }
        let w = solve(&mut a, &mut b);
        let mut weights = [0.0; N_FEATURES];
        weights.copy_from_slice(&w);
        XappModel { weights }
    }

    /// Predicts the target (speedup) for a feature vector.
    pub fn predict(&self, f: &FeatureVector) -> f64 {
        self.weights.iter().zip(f.0.iter()).map(|(w, x)| w * x).sum()
    }

    /// The fitted weights (diagnostics).
    pub fn weights(&self) -> &[f64; N_FEATURES] {
        &self.weights
    }
}

/// Gaussian elimination with partial pivoting; `a` is consumed.
#[allow(clippy::needless_range_loop)]
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).expect("finite"))
            .expect("nonempty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-12 {
            continue; // singular direction: leave weight at zero
        }
        for row in col + 1..n {
            let factor = a[row][col] / diag;
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-12 { 0.0 } else { acc / a[col][col] };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use threadfuser_machine::MachineConfig;
    use threadfuser_tracer::trace_program;

    fn fv(vals: &[f64]) -> FeatureVector {
        let mut f = [0.0; N_FEATURES];
        f[..vals.len()].copy_from_slice(vals);
        f[N_FEATURES - 1] = 1.0; // bias
        FeatureVector(f)
    }

    #[test]
    fn recovers_linear_relationship() {
        // y = 3*x0 - 2*x1 + 1
        let samples: Vec<(FeatureVector, f64)> = (0..50)
            .map(|i| {
                let x0 = (i % 7) as f64;
                let x1 = (i % 5) as f64;
                (fv(&[x0, x1]), 3.0 * x0 - 2.0 * x1 + 1.0)
            })
            .collect();
        let model = XappModel::train(&samples, 1e-6);
        let pred = model.predict(&fv(&[4.0, 2.0]));
        assert!((pred - (12.0 - 4.0 + 1.0)).abs() < 1e-3, "got {pred}");
    }

    #[test]
    fn ridge_handles_collinear_features() {
        // x1 == x0 exactly: unregularized normal equations are singular.
        let samples: Vec<(FeatureVector, f64)> =
            (0..20).map(|i| (fv(&[i as f64, i as f64]), 2.0 * i as f64)).collect();
        let model = XappModel::train(&samples, 0.1);
        let pred = model.predict(&fv(&[5.0, 5.0]));
        assert!((pred - 10.0).abs() < 0.5, "got {pred}");
    }

    #[test]
    fn features_extracted_from_real_trace() {
        let mut pb = threadfuser_ir::ProgramBuilder::new();
        let g = pb.global("g", 8 * 64);
        let k = pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let v = fb.var(8);
            fb.store_var(v, tid);
            let x = fb.load_var(v);
            let m = fb.global_ref(g, threadfuser_ir::Operand::Reg(tid), 8);
            fb.store(m, x);
            fb.ret(None);
        });
        let p = pb.build().unwrap();
        let (traces, _) = trace_program(&p, MachineConfig::new(k, 4)).unwrap();
        let f = extract_features(&p, &traces);
        assert!(f.0[0] > 0.0, "memory intensity present");
        assert!(f.0[9] > 0.0, "stack accesses present");
        assert_eq!(f.0[N_FEATURES - 1], 1.0, "bias");
        assert!(f.0.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prediction_is_linear_in_weights() {
        let samples: Vec<(FeatureVector, f64)> =
            (1..30).map(|i| (fv(&[i as f64]), 4.0 * i as f64)).collect();
        let model = XappModel::train(&samples, 1e-9);
        let a = model.predict(&fv(&[1.0]));
        let b = model.predict(&fv(&[2.0]));
        let c = model.predict(&fv(&[3.0]));
        assert!((c - b - (b - a)).abs() < 1e-6, "linear spacing");
    }
}
