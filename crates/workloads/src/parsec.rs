//! PARSEC 3.0 workloads: blackscholes, streamcluster, bodytrack, facesim,
//! fluidanimate, freqmine, swaptions, vips, and x264.

use crate::motifs::{bounded_hash, compute_chain, elem8, with_lock, xorshift_round};
use crate::rodinia::build_streamcluster;
use crate::{Suite, Workload, WorkloadMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threadfuser_ir::{AluOp, Cond, Operand, ProgramBuilder};

fn meta(
    name: &'static str,
    description: &'static str,
    paper_threads: u32,
    uses_locks: bool,
) -> WorkloadMeta {
    WorkloadMeta {
        name,
        suite: Suite::Parsec,
        description,
        paper_threads,
        default_threads: 256,
        has_gpu_impl: false,
        uses_locks,
    }
}

/// blackscholes: one option per thread, a fixed closed-form formula with a
/// cheap call/put branch — near-perfect efficiency.
pub fn blackscholes() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xB5B5);
    let opts: Vec<i64> = (0..1024 * 4).map(|_| rng.gen_range(1..10_000)).collect();
    let mut pb = ProgramBuilder::new();
    let g_opts = pb.global_i64("options", &opts);
    let g_out = pb.global("prices", 8 * 4096);
    let kernel = pb.function("bs_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let idx = fb.alu(AluOp::Rem, tid, 1024i64);
        let base = fb.alu(AluOp::Mul, idx, 4i64);
        let spot = {
            let m = elem8(fb, g_opts, base);
            fb.load(m)
        };
        let strike = {
            let b1 = fb.alu(AluOp::Add, base, 1i64);
            let m = elem8(fb, g_opts, b1);
            fb.load(m)
        };
        // Fixed-point CDF approximation chain (identical on all threads).
        let spread = fb.alu(AluOp::Sub, spot, strike);
        let d1 = compute_chain(fb, spread, 60);
        // Call vs put by option parity: both sides cost the same.
        let parity = fb.alu(AluOp::And, idx, 1i64);
        let price = fb.var(8);
        fb.if_then_else(
            Cond::Eq,
            parity,
            0i64,
            |fb| {
                let p = fb.alu(AluOp::Add, d1, 100i64);
                fb.store_var(price, p);
            },
            |fb| {
                let p = fb.alu(AluOp::Sub, d1, 100i64);
                fb.store_var(price, p);
            },
        );
        let p = fb.load_var(price);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, p);
        fb.ret(None);
    });
    Workload {
        meta: meta("blackscholes", "closed-form option pricing, convergent", 1024, false),
        program: pb.build().expect("blackscholes builds"),
        kernel,
        init: None,
    }
}

/// PARSEC streamcluster (same kernel family as the Rodinia variant, larger
/// input regime in the paper).
pub fn streamcluster_p() -> Workload {
    build_streamcluster(
        WorkloadMeta {
            name: "streamcluster_p",
            suite: Suite::Parsec,
            description: "k-center assignment (PARSEC input regime)",
            paper_threads: 8 * 1024,
            default_threads: 256,
            has_gpu_impl: false,
            uses_locks: false,
        },
        0x5C5D,
    )
}

/// bodytrack: per-particle likelihood over fixed camera set with an
/// error-threshold early exit — medium divergence.
pub fn bodytrack() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xB0D1);
    let frames: Vec<i64> = (0..1024).map(|_| rng.gen_range(0..255)).collect();
    let mut pb = ProgramBuilder::new();
    let g_frames = pb.global_i64("edge_maps", &frames);
    let g_out = pb.global("likelihood", 8 * 4096);
    let kernel = pb.function("bodytrack_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let err = fb.var(8);
        fb.store_var(err, 0i64);
        let cam = fb.var(8);
        fb.store_var(cam, 0i64);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(head);
        fb.switch_to(head);
        let c = fb.load_var(cam);
        fb.br(Cond::Lt, c, 8i64, body, exit);
        fb.switch_to(body);
        // Sample the edge map at a particle-dependent offset.
        let mix = fb.alu(AluOp::Mul, tid, 31i64);
        let off0 = fb.alu(AluOp::Add, mix, c);
        let off = fb.alu(AluOp::And, off0, 1023i64);
        let m = elem8(fb, g_frames, off);
        let sample = fb.load(m);
        let contrib = compute_chain(fb, sample, 8);
        let clamped = fb.alu(AluOp::And, contrib, 0xFFi64);
        let e = fb.load_var(err);
        let e2 = fb.alu(AluOp::Add, e, clamped);
        fb.store_var(err, e2);
        // Early exit once the particle is hopeless (data-dependent).
        let bail = fb.new_block();
        let next = fb.new_block();
        fb.br(Cond::Gt, e2, 900i64, bail, next);
        fb.switch_to(bail);
        fb.jmp(exit);
        fb.switch_to(next);
        let c2 = fb.alu(AluOp::Add, c, 1i64);
        fb.store_var(cam, c2);
        fb.jmp(head);
        fb.switch_to(exit);
        let e = fb.load_var(err);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, e);
        fb.ret(None);
    });
    Workload {
        meta: meta("bodytrack", "per-particle likelihood with early exit", 1024, false),
        program: pb.build().expect("bodytrack builds"),
        kernel,
        init: None,
    }
}

/// facesim: mesh-node update over a fixed neighbor stencil — convergent
/// control, scattered (indirection-table) loads.
pub fn facesim() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    const NODES: usize = 512;
    let nbrs: Vec<i64> = (0..NODES * 8).map(|_| rng.gen_range(0..NODES) as i64).collect();
    let pos: Vec<i64> = (0..NODES).map(|_| rng.gen_range(-500..500)).collect();
    let mut pb = ProgramBuilder::new();
    let g_nbrs = pb.global_i64("neighbors", &nbrs);
    let g_pos = pb.global_i64("positions", &pos);
    let g_out = pb.global("forces", 8 * NODES as u64);
    let kernel = pb.function("facesim_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let node = fb.alu(AluOp::Rem, tid, NODES as i64);
        let base = fb.alu(AluOp::Mul, node, 8i64);
        let mypos = {
            let m = elem8(fb, g_pos, node);
            fb.load(m)
        };
        let force = fb.var(8);
        fb.store_var(force, 0i64);
        fb.for_range(0i64, 8i64, 1, |fb, k| {
            let idx = fb.alu(AluOp::Add, base, k);
            let mn = elem8(fb, g_nbrs, idx);
            let nbr = fb.load(mn);
            let mp = elem8(fb, g_pos, nbr);
            let np = fb.load(mp);
            let d = fb.alu(AluOp::Sub, np, mypos);
            let spring = fb.alu(AluOp::Mul, d, 3i64);
            let f = fb.load_var(force);
            let f2 = fb.alu(AluOp::Add, f, spring);
            fb.store_var(force, f2);
        });
        let f = fb.load_var(force);
        let mo = elem8(fb, g_out, node);
        fb.store(mo, f);
        fb.ret(None);
    });
    Workload {
        meta: meta("facesim", "mesh stencil, convergent + scattered loads", 1024, false),
        program: pb.build().expect("facesim builds"),
        kernel,
        init: None,
    }
}

/// fluidanimate: per-cell particle interactions — variable particles per
/// cell and a per-cell lock on the write-back.
pub fn fluidanimate() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xF1D0);
    const CELLS: usize = 512;
    let occupancy: Vec<i64> = (0..CELLS).map(|_| rng.gen_range(0..8)).collect();
    let mut pb = ProgramBuilder::new();
    let g_occ = pb.global_i64("occupancy", &occupancy);
    let g_locks = pb.global("cell_locks", 8 * 64);
    let g_density = pb.global("density", 8 * CELLS as u64);
    let kernel = pb.function("fluid_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let cell = fb.alu(AluOp::Rem, tid, CELLS as i64);
        let acc = fb.var(8);
        fb.store_var(acc, 0i64);
        // Fixed 3-neighbor stencil, variable particles per neighbor cell.
        fb.for_range(0i64, 3i64, 1, |fb, n| {
            let nc0 = fb.alu(AluOp::Add, cell, n);
            let nc = fb.alu(AluOp::Rem, nc0, CELLS as i64);
            let mo = elem8(fb, g_occ, nc);
            let particles = fb.load(mo);
            fb.for_range(0i64, Operand::Reg(particles), 1, |fb, p| {
                let w = compute_chain(fb, p, 6);
                let a = fb.load_var(acc);
                let s = fb.alu(AluOp::Add, a, w);
                fb.store_var(acc, s);
            });
        });
        let a = fb.load_var(acc);
        let slot = fb.alu(AluOp::And, cell, 63i64);
        with_lock(fb, g_locks, slot, |fb| {
            let m = elem8(fb, g_density, cell);
            let old = fb.load(m);
            let s = fb.alu(AluOp::Add, old, a);
            let m2 = elem8(fb, g_density, cell);
            fb.store(m2, s);
        });
        fb.ret(None);
    });
    Workload {
        meta: meta("fluidanimate", "variable particles/cell + locked writes", 4096, true),
        program: pb.build().expect("fluidanimate builds"),
        kernel,
        init: None,
    }
}

/// freqmine: FP-growth-style conditional tree walks — variable path depth
/// and per-node branching; one of the least SIMT-friendly PARSEC codes.
pub fn freqmine() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xF9E3);
    const NODES: usize = 1024;
    let parent: Vec<i64> =
        (0..NODES).map(|i| if i == 0 { 0 } else { rng.gen_range(0..i) as i64 }).collect();
    let counts: Vec<i64> = (0..NODES).map(|_| rng.gen_range(0..32)).collect();
    let mut pb = ProgramBuilder::new();
    let g_parent = pb.global_i64("fp_parent", &parent);
    let g_counts = pb.global_i64("fp_counts", &counts);
    let g_out = pb.global("support", 8 * 4096);
    let kernel = pb.function("freqmine_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let start = bounded_hash(fb, tid, NODES as i64);
        let cur = fb.var(8);
        fb.store_var(cur, start);
        let support = fb.var(8);
        fb.store_var(support, 0i64);
        // Walk to the root (variable depth), conditionally accumulating.
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(head);
        fb.switch_to(head);
        let c = fb.load_var(cur);
        fb.br(Cond::Gt, c, 0i64, body, exit);
        fb.switch_to(body);
        let mc = elem8(fb, g_counts, c);
        let cnt = fb.load(mc);
        // Only frequent nodes contribute (per-node branch).
        fb.if_then(Cond::Gt, cnt, 8i64, |fb| {
            let s = fb.load_var(support);
            let s2 = fb.alu(AluOp::Add, s, cnt);
            fb.store_var(support, s2);
        });
        let mp = elem8(fb, g_parent, c);
        let p = fb.load(mp);
        fb.store_var(cur, p);
        fb.jmp(head);
        fb.switch_to(exit);
        let s = fb.load_var(support);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, s);
        fb.ret(None);
    });
    Workload {
        meta: meta("freqmine", "FP-tree walks of variable depth", 2048, false),
        program: pb.build().expect("freqmine builds"),
        kernel,
        init: None,
    }
}

/// swaptions: Monte Carlo HJM — fixed trials × fixed steps of uniform
/// arithmetic; very high efficiency, warp-size-insensitive.
pub fn swaptions() -> Workload {
    let mut pb = ProgramBuilder::new();
    let g_out = pb.global("swaption_prices", 8 * 4096);
    let kernel = pb.function("swaptions_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let sum = fb.var(8);
        fb.store_var(sum, 0i64);
        fb.for_range(0i64, 8i64, 1, |fb, trial| {
            let seed0 = fb.alu(AluOp::Mul, tid, 0x9E37i64);
            let seed = fb.alu(AluOp::Add, seed0, trial);
            let state = fb.mov(seed);
            fb.for_range(0i64, 16i64, 1, |fb, _step| {
                xorshift_round(fb, state);
                let rate = fb.alu(AluOp::And, state, 0xFFFi64);
                let drift = fb.alu(AluOp::Mul, rate, 3i64);
                let _ = fb.alu(AluOp::Sar, drift, 2i64);
            });
            let payoff = fb.alu(AluOp::And, state, 0xFFFFi64);
            let s = fb.load_var(sum);
            let s2 = fb.alu(AluOp::Add, s, payoff);
            fb.store_var(sum, s2);
        });
        let s = fb.load_var(sum);
        let avg = fb.alu(AluOp::Div, s, 8i64);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, avg);
        fb.ret(None);
    });
    Workload {
        meta: meta("swaptions", "Monte Carlo pricing, fixed trials×steps", 512, false),
        program: pb.build().expect("swaptions builds"),
        kernel,
        init: None,
    }
}

/// vips: per-tile image pipeline with rare clamp branches — high
/// efficiency, coalesced row access.
pub fn vips() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x7195);
    const PIXELS: usize = 4096;
    let img: Vec<i64> = (0..PIXELS).map(|_| rng.gen_range(0..256)).collect();
    let mut pb = ProgramBuilder::new();
    let g_img = pb.global_i64("image", &img);
    let g_out = pb.global("image_out", 8 * PIXELS as u64);
    let kernel = pb.function("vips_kernel", 1, |fb| {
        let tid = fb.arg(0);
        // Each thread owns an 8-pixel row chunk.
        let base = fb.alu(AluOp::Mul, tid, 8i64);
        fb.for_range(0i64, 8i64, 1, |fb, i| {
            let idx0 = fb.alu(AluOp::Add, base, i);
            let idx = fb.alu(AluOp::And, idx0, (PIXELS - 1) as i64);
            let m = elem8(fb, g_img, idx);
            let px = fb.load(m);
            // Convolve-ish arithmetic.
            let a = fb.alu(AluOp::Mul, px, 5i64);
            let b = fb.alu(AluOp::Add, a, 16i64);
            let c = fb.alu(AluOp::Sar, b, 3i64);
            // Rare clamp (taken for ~6% of pixels).
            let out = fb.var(8);
            fb.store_var(out, c);
            fb.if_then(Cond::Gt, c, 240i64, |fb| {
                fb.store_var(out, 240i64);
            });
            let v = fb.load_var(out);
            let mo = elem8(fb, g_out, idx);
            fb.store(mo, v);
        });
        fb.ret(None);
    });
    Workload {
        meta: meta("vips", "image pipeline with rare clamp branches", 512, false),
        program: pb.build().expect("vips builds"),
        kernel,
        init: None,
    }
}

/// x264: motion search per macroblock with SAD-threshold early
/// termination — heavily data-dependent, low-medium efficiency.
pub fn x264() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x2640);
    const BLOCKS: usize = 512;
    let sads: Vec<i64> = (0..BLOCKS * 16).map(|_| rng.gen_range(0..800)).collect();
    let mut pb = ProgramBuilder::new();
    let g_sads = pb.global_i64("sad_table", &sads);
    let g_out = pb.global("mv_out", 8 * 4096);
    let kernel = pb.function("x264_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let mb = fb.alu(AluOp::Rem, tid, BLOCKS as i64);
        let base = fb.alu(AluOp::Mul, mb, 16i64);
        let best = fb.var(8);
        fb.store_var(best, i64::MAX);
        let cand = fb.var(8);
        fb.store_var(cand, 0i64);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(head);
        fb.switch_to(head);
        let c = fb.load_var(cand);
        fb.br(Cond::Lt, c, 16i64, body, exit);
        fb.switch_to(body);
        let idx = fb.alu(AluOp::Add, base, c);
        let m = elem8(fb, g_sads, idx);
        let sad = fb.load(m);
        // Refine cost (uniform work per candidate).
        let cost0 = compute_chain(fb, sad, 5);
        let cost = fb.alu(AluOp::And, cost0, 0x3FFi64);
        let b = fb.load_var(best);
        let mn = fb.alu(AluOp::Min, b, cost);
        fb.store_var(best, mn);
        // Early termination when a good-enough match appears.
        let good = fb.new_block();
        let next = fb.new_block();
        fb.br(Cond::Lt, mn, 40i64, good, next);
        fb.switch_to(good);
        fb.jmp(exit);
        fb.switch_to(next);
        let c2 = fb.alu(AluOp::Add, c, 1i64);
        fb.store_var(cand, c2);
        fb.jmp(head);
        fb.switch_to(exit);
        let b = fb.load_var(best);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, b);
        fb.ret(None);
    });
    Workload {
        meta: meta("x264", "motion search with early termination", 4096, false),
        program: pb.build().expect("x264 builds"),
        kernel,
        init: None,
    }
}
