//! Cooperative-threading workloads: user-level schedulers, bounded
//! channels, and join-tree/signal-driven teardown (ROADMAP item 3).
//!
//! Every other Table-I workload is pthread-style — preemptive threads
//! whose divergence comes from data-dependent work inside one logical
//! task. This family models the *other* sync universe: each simulated
//! thread runs a user-level scheduler multiplexing a handful of fibers,
//! so the hot control flow is the scheduler itself — a jump table over
//! thread control blocks (`Terminator::Switch`), data-dependent winner
//! scans (lottery), spin-skip channel protocols, and tree joins. This
//! is the adversarial input set for trace-based IPDOM analysis: the
//! divergence is *scheduler-driven*, and the PR-7 reconvergence models
//! (IPDOM stack vs stackless PC-min vs branch melding) visibly disagree
//! on it.
//!
//! `coop_yield` is the control: the identical scheduler skeleton with
//! fixed, thread-invariant budgets, so every thread takes the same path
//! through the jump table and the family's divergence is attributable
//! to scheduling decisions rather than scheduler structure.

use crate::motifs::{bounded_hash, compute_chain, elem8, variable_work, with_lock, xorshift_round};
use crate::{Suite, Workload, WorkloadMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threadfuser_ir::{AluOp, Cond, FunctionBuilder, Operand, ProgramBuilder, Reg, Slot};

/// Fibers multiplexed by each simulated thread's scheduler.
const FIBERS: i64 = 4;

fn meta(
    name: &'static str,
    description: &'static str,
    default_threads: u32,
    uses_locks: bool,
) -> WorkloadMeta {
    WorkloadMeta {
        name,
        suite: Suite::Coop,
        description,
        // Not a paper Table-I row: the family models the mypthreads-style
        // cooperative runtime at the same scale as the microservices.
        paper_threads: 256,
        default_threads,
        has_gpu_impl: false,
        uses_locks,
    }
}

/// Mixes the fiber-local scheduler state one xorshift round and leaves
/// the new value both in the returned register and back in `state_var`.
fn rng_step(fb: &mut FunctionBuilder, state_var: Slot) -> Reg {
    let s = fb.load_var(state_var);
    xorshift_round(fb, s);
    fb.store_var(state_var, s);
    s
}

/// Round-robin user-level scheduler: a `while (alive)` loop whose body
/// dispatches the cursor fiber through a jump table over four fiber
/// handlers. Each fiber owns a time-slice budget drawn from a hash of
/// `(tid, fiber)`, so threads retire fibers at different iterations —
/// the scheduler loop itself is the divergence source.
pub fn coop_rr() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xC009_0001);
    let data: Vec<i64> = (0..1024).map(|_| rng.gen_range(1..1_000)).collect();

    let mut pb = ProgramBuilder::new();
    let g_data = pb.global_i64("rr_data", &data);
    let g_out = pb.global("rr_out", 8 * 4096);
    let kernel = pb.function("coop_rr", 1, |fb| {
        let tid = fb.arg(0);
        // Thread control blocks: per-fiber remaining time slices (2..=7).
        let budgets = fb.frame_array(FIBERS as u32, 8);
        for f in 0..FIBERS {
            let key = fb.alu(AluOp::Mul, tid, FIBERS);
            let key = fb.alu(AluOp::Add, key, f);
            let b = bounded_hash(fb, key, 6);
            let b = fb.alu(AluOp::Add, b, 2i64);
            let fi = fb.mov(f);
            let slot = fb.frame_ref(budgets, Operand::Reg(fi), 8);
            fb.store(slot, b);
        }
        let alive = fb.var(8);
        fb.store_var(alive, FIBERS);
        let cursor = fb.var(8);
        fb.store_var(cursor, 0i64);
        let acc = fb.var(8);
        fb.store_var(acc, 0i64);

        let head = fb.new_block();
        let dispatch = fb.new_block();
        let tail = fb.new_block();
        let exit = fb.new_block();
        let handlers: Vec<_> = (0..FIBERS).map(|_| fb.new_block()).collect();
        fb.jmp(head);

        fb.switch_to(head);
        let a = fb.load_var(alive);
        fb.br(Cond::Eq, a, 0i64, exit, dispatch);

        fb.switch_to(dispatch);
        let c = fb.load_var(cursor);
        fb.switch(c, 0, handlers.clone(), tail);

        for (f, &h) in handlers.iter().enumerate() {
            fb.switch_to(h);
            let fi = fb.mov(f as i64);
            let slot = fb.frame_ref(budgets, Operand::Reg(fi), 8);
            let b = fb.load(slot);
            // Dead fibers yield straight back to the scheduler.
            fb.if_then(Cond::Ne, b, 0i64, |fb| {
                // Each fiber flavour does different slice work.
                let v = match f {
                    0 => compute_chain(fb, tid, 10),
                    1 => {
                        let idx = fb.alu(AluOp::Mul, tid, FIBERS);
                        let idx = fb.alu(AluOp::Add, idx, b);
                        let idx = fb.alu(AluOp::And, idx, 1023i64);
                        let m = elem8(fb, g_data, idx);
                        fb.load(m)
                    }
                    2 => {
                        let seed = fb.alu(AluOp::Xor, tid, b);
                        compute_chain(fb, seed, 6)
                    }
                    _ => {
                        let h = fb.alu(AluOp::Mul, b, 0x9E37_79B9i64);
                        fb.alu(AluOp::Xor, h, tid)
                    }
                };
                let a0 = fb.load_var(acc);
                let a1 = fb.alu(AluOp::Add, a0, v);
                fb.store_var(acc, a1);
                let b2 = fb.alu(AluOp::Sub, b, 1i64);
                fb.store(slot, b2);
                fb.if_then(Cond::Eq, b2, 0i64, |fb| {
                    let a = fb.load_var(alive);
                    let a2 = fb.alu(AluOp::Sub, a, 1i64);
                    fb.store_var(alive, a2);
                });
            });
            fb.jmp(tail);
        }

        fb.switch_to(tail);
        let c = fb.load_var(cursor);
        let c = fb.alu(AluOp::Add, c, 1i64);
        let c = fb.alu(AluOp::Rem, c, FIBERS);
        fb.store_var(cursor, c);
        fb.jmp(head);

        fb.switch_to(exit);
        let wrapped = fb.alu(AluOp::And, tid, 4095i64);
        let m = elem8(fb, g_out, wrapped);
        let v = fb.load_var(acc);
        fb.store(m, v);
        fb.ret(None);
    });
    Workload {
        meta: meta("coop_rr", "round-robin fiber scheduler, jump table over TCBs", 128, false),
        program: pb.build().expect("coop_rr builds"),
        kernel,
        init: None,
    }
}

/// Lottery scheduler: every iteration draws a ticket from a xorshift
/// stream, scans the fiber ticket table until the cumulative count
/// covers the draw (a data-dependent inner loop), then dispatches the
/// winner through the same jump-table shape as [`coop_rr`]. Exhausted
/// fibers surrender their tickets, shrinking the draw space.
pub fn coop_lottery() -> Workload {
    let mut pb = ProgramBuilder::new();
    let g_out = pb.global("lottery_out", 8 * 4096);
    let kernel = pb.function("coop_lottery", 1, |fb| {
        let tid = fb.arg(0);
        let tickets = fb.frame_array(FIBERS as u32, 8);
        let budgets = fb.frame_array(FIBERS as u32, 8);
        let total = fb.var(8);
        fb.store_var(total, 0i64);
        for f in 0..FIBERS {
            let key = fb.alu(AluOp::Mul, tid, FIBERS);
            let key = fb.alu(AluOp::Add, key, f);
            let t = bounded_hash(fb, key, 8);
            let t = fb.alu(AluOp::Add, t, 1i64); // 1..=8 tickets
            let key2 = fb.alu(AluOp::Add, key, 0x5151i64);
            let b = bounded_hash(fb, key2, 4);
            let b = fb.alu(AluOp::Add, b, 1i64); // 1..=4 slices
            let fi = fb.mov(f);
            let ts = fb.frame_ref(tickets, Operand::Reg(fi), 8);
            fb.store(ts, t);
            let bs = fb.frame_ref(budgets, Operand::Reg(fi), 8);
            fb.store(bs, b);
            let tv = fb.load_var(total);
            let tv2 = fb.alu(AluOp::Add, tv, t);
            fb.store_var(total, tv2);
        }
        let state = fb.var(8);
        let seeded = fb.alu(AluOp::Mul, tid, 0x2545_F491_4F6C_DD1Di64);
        let seeded = fb.alu(AluOp::Add, seeded, 0x9E37i64);
        fb.store_var(state, seeded);
        let acc = fb.var(8);
        fb.store_var(acc, 0i64);

        fb.while_nonzero(
            |fb| fb.load_var(total),
            |fb| {
                // Draw a ticket in 0..total.
                let s = rng_step(fb, state);
                let masked = fb.alu(AluOp::And, s, i64::MAX);
                let tv = fb.load_var(total);
                let draw = fb.alu(AluOp::Rem, masked, tv);

                // Winner scan: walk the ticket table until the running
                // sum covers the draw. Trip count is data-dependent.
                let cum = fb.var(8);
                fb.store_var(cum, 0i64);
                let idx = fb.var(8);
                fb.store_var(idx, 0i64);
                let sh = fb.new_block();
                let sb = fb.new_block();
                let snext = fb.new_block();
                let sfound = fb.new_block();
                let sexit = fb.new_block();
                fb.jmp(sh);

                fb.switch_to(sh);
                let i = fb.load_var(idx);
                fb.br(Cond::Lt, i, FIBERS, sb, sexit);

                fb.switch_to(sb);
                let ts = fb.frame_ref(tickets, Operand::Reg(i), 8);
                let ti = fb.load(ts);
                let c0 = fb.load_var(cum);
                let c1 = fb.alu(AluOp::Add, c0, ti);
                fb.store_var(cum, c1);
                fb.br(Cond::Lt, draw, c1, sfound, snext);

                fb.switch_to(snext);
                let i2 = fb.alu(AluOp::Add, i, 1i64);
                fb.store_var(idx, i2);
                fb.jmp(sh);

                fb.switch_to(sfound);
                fb.jmp(sexit);

                fb.switch_to(sexit);
                let winner = fb.load_var(idx);
                let clamped = fb.alu(AluOp::Rem, winner, FIBERS);

                // Dispatch the winner through the fiber jump table.
                let join = fb.new_block();
                let handlers: Vec<_> = (0..FIBERS).map(|_| fb.new_block()).collect();
                fb.switch(clamped, 0, handlers.clone(), join);
                for (f, &h) in handlers.iter().enumerate() {
                    fb.switch_to(h);
                    let seed = fb.alu(AluOp::Xor, tid, f as i64);
                    let v = compute_chain(fb, seed, 4 + 2 * f);
                    let a0 = fb.load_var(acc);
                    let a1 = fb.alu(AluOp::Add, a0, v);
                    fb.store_var(acc, a1);
                    let fi = fb.mov(f as i64);
                    let bs = fb.frame_ref(budgets, Operand::Reg(fi), 8);
                    let b = fb.load(bs);
                    let b2 = fb.alu(AluOp::Sub, b, 1i64);
                    fb.store(bs, b2);
                    // An exhausted fiber surrenders its tickets.
                    fb.if_then(Cond::Le, b2, 0i64, |fb| {
                        let fi = fb.mov(f as i64);
                        let ts = fb.frame_ref(tickets, Operand::Reg(fi), 8);
                        let t = fb.load(ts);
                        let tv = fb.load_var(total);
                        let tv2 = fb.alu(AluOp::Sub, tv, t);
                        fb.store_var(total, tv2);
                        fb.store(ts, 0i64);
                    });
                    fb.jmp(join);
                }
                fb.switch_to(join);
            },
        );

        let wrapped = fb.alu(AluOp::And, tid, 4095i64);
        let m = elem8(fb, g_out, wrapped);
        let v = fb.load_var(acc);
        fb.store(m, v);
        fb.ret(None);
    });
    Workload {
        meta: meta(
            "coop_lottery",
            "lottery fiber scheduler, data-dependent ticket scan",
            128,
            false,
        ),
        program: pb.build().expect("coop_lottery builds"),
        kernel,
        init: None,
    }
}

/// Bounded channel between a producer and a consumer fiber: the
/// scheduler ping-pongs between the two, each turn attempting a burst
/// of sends/receives. Full/empty channels yield back (spin-skip), and
/// slot access goes through a shared lock shard, so the workload mixes
/// scheduler divergence with Fig.-9-style lock serialization.
pub fn coop_channel() -> Workload {
    const CAP: i64 = 4;
    const RING_THREADS: i64 = 256;
    const BURST: usize = 2;

    let mut pb = ProgramBuilder::new();
    let g_ring = pb.global("chan_ring", 8 * (RING_THREADS * CAP) as u64);
    let g_locks = pb.global("chan_locks", 8 * 8);
    let g_out = pb.global("chan_out", 8 * 4096);
    let kernel = pb.function("coop_channel", 1, |fb| {
        let tid = fb.arg(0);
        let t = fb.alu(AluOp::Rem, tid, RING_THREADS);
        let base = fb.alu(AluOp::Mul, t, CAP);
        let lock_slot = fb.alu(AluOp::And, tid, 7i64);

        // 4..=9 items per thread: the channel traffic is divergent.
        let items = bounded_hash(fb, tid, 6);
        let items = fb.alu(AluOp::Add, items, 4i64);
        let produced = fb.var(8);
        fb.store_var(produced, 0i64);
        let remaining = fb.var(8);
        fb.store_var(remaining, items);
        let head = fb.var(8);
        fb.store_var(head, 0i64);
        let tail = fb.var(8);
        fb.store_var(tail, 0i64);
        let count = fb.var(8);
        fb.store_var(count, 0i64);
        let cur = fb.var(8);
        fb.store_var(cur, 0i64);
        let acc = fb.var(8);
        fb.store_var(acc, 0i64);

        fb.while_nonzero(
            |fb| fb.load_var(remaining),
            |fb| {
                let fibers = vec![fb.new_block(), fb.new_block()];
                let join = fb.new_block();
                let c = fb.load_var(cur);
                fb.switch(c, 0, fibers.clone(), join);

                // Producer fiber: send a burst, yielding when full.
                fb.switch_to(fibers[0]);
                for _ in 0..BURST {
                    let p = fb.load_var(produced);
                    fb.if_then(Cond::Lt, p, items, |fb| {
                        let cnt = fb.load_var(count);
                        fb.if_then(Cond::Lt, cnt, CAP, |fb| {
                            let tl = fb.load_var(tail);
                            let idx = fb.alu(AluOp::Add, base, tl);
                            let payload = fb.alu(AluOp::Mul, p, 0x9E37_79B9i64);
                            let payload = fb.alu(AluOp::Xor, payload, tid);
                            with_lock(fb, g_locks, lock_slot, |fb| {
                                let m = elem8(fb, g_ring, idx);
                                fb.store(m, payload);
                            });
                            let tl2 = fb.alu(AluOp::Add, tl, 1i64);
                            let tl2 = fb.alu(AluOp::Rem, tl2, CAP);
                            fb.store_var(tail, tl2);
                            let cnt2 = fb.alu(AluOp::Add, cnt, 1i64);
                            fb.store_var(count, cnt2);
                            let p2 = fb.alu(AluOp::Add, p, 1i64);
                            fb.store_var(produced, p2);
                        });
                    });
                }
                fb.jmp(join);

                // Consumer fiber: drain a burst, yielding when empty;
                // each item's processing cost depends on its payload.
                fb.switch_to(fibers[1]);
                for _ in 0..BURST {
                    let cnt = fb.load_var(count);
                    fb.if_then(Cond::Gt, cnt, 0i64, |fb| {
                        let hd = fb.load_var(head);
                        let idx = fb.alu(AluOp::Add, base, hd);
                        let v = fb.var(8);
                        with_lock(fb, g_locks, lock_slot, |fb| {
                            let m = elem8(fb, g_ring, idx);
                            let loaded = fb.load(m);
                            fb.store_var(v, loaded);
                        });
                        let hd2 = fb.alu(AluOp::Add, hd, 1i64);
                        let hd2 = fb.alu(AluOp::Rem, hd2, CAP);
                        fb.store_var(head, hd2);
                        let cnt2 = fb.alu(AluOp::Sub, cnt, 1i64);
                        fb.store_var(count, cnt2);
                        let payload = fb.load_var(v);
                        let masked = fb.alu(AluOp::And, payload, i64::MAX);
                        let work = fb.alu(AluOp::Rem, masked, 3i64);
                        let work = fb.alu(AluOp::Add, work, 1i64);
                        variable_work(fb, work, 3);
                        let a0 = fb.load_var(acc);
                        let a1 = fb.alu(AluOp::Add, a0, payload);
                        fb.store_var(acc, a1);
                        let r = fb.load_var(remaining);
                        let r2 = fb.alu(AluOp::Sub, r, 1i64);
                        fb.store_var(remaining, r2);
                    });
                }
                fb.jmp(join);

                fb.switch_to(join);
                let c = fb.load_var(cur);
                let c2 = fb.alu(AluOp::Xor, c, 1i64);
                fb.store_var(cur, c2);
            },
        );

        let wrapped = fb.alu(AluOp::And, tid, 4095i64);
        let m = elem8(fb, g_out, wrapped);
        let v = fb.load_var(acc);
        fb.store(m, v);
        fb.ret(None);
    });
    Workload {
        meta: meta(
            "coop_channel",
            "bounded channel, producer/consumer fibers ping-pong under lock shards",
            128,
            true,
        ),
        program: pb.build().expect("coop_channel builds"),
        kernel,
        init: None,
    }
}

/// Join tree with signal-driven teardown: eight leaf fibers burn down
/// hash-drawn budgets; internal nodes poll their children each scheduler
/// round and merge once both complete (check-and-yield). When the root
/// joins, a teardown signal sweeps every fiber through a cleanup pass.
pub fn coop_jointree() -> Workload {
    const LEAVES: i64 = 8;
    const NODES: i64 = 2 * LEAVES - 1; // full binary tree, root at 0

    let mut pb = ProgramBuilder::new();
    let g_out = pb.global("join_out", 8 * 4096);
    let kernel = pb.function("coop_jointree", 1, |fb| {
        let tid = fb.arg(0);
        let work = fb.frame_array(NODES as u32, 8);
        let done = fb.frame_array(NODES as u32, 8);
        for n in 0..NODES {
            let ni = fb.mov(n);
            let ds = fb.frame_ref(done, Operand::Reg(ni), 8);
            fb.store(ds, 0i64);
            let ws = fb.frame_ref(work, Operand::Reg(ni), 8);
            if n >= LEAVES - 1 {
                let key = fb.alu(AluOp::Mul, tid, NODES);
                let key = fb.alu(AluOp::Add, key, n);
                let b = bounded_hash(fb, key, 4);
                let b = fb.alu(AluOp::Add, b, 1i64); // 1..=4 slices
                fb.store(ws, b);
            } else {
                fb.store(ws, 0i64);
            }
        }
        let acc = fb.var(8);
        fb.store_var(acc, 0i64);

        // Scheduler rounds until the root joins.
        let root_done = |fb: &mut FunctionBuilder| {
            let zero = fb.mov(0i64);
            let ds = fb.frame_ref(done, Operand::Reg(zero), 8);
            let d = fb.load(ds);
            fb.alu(AluOp::Xor, d, 1i64)
        };
        fb.while_nonzero(root_done, |fb| {
            fb.for_range(0i64, NODES, 1, |fb, n| {
                let ds = fb.frame_ref(done, Operand::Reg(n), 8);
                let d = fb.load(ds);
                fb.if_then(Cond::Eq, d, 0i64, |fb| {
                    fb.if_then_else(
                        Cond::Ge,
                        n,
                        LEAVES - 1,
                        // Leaf fiber: burn one slice of budget.
                        |fb| {
                            let ws = fb.frame_ref(work, Operand::Reg(n), 8);
                            let w = fb.load(ws);
                            let seed = fb.alu(AluOp::Xor, tid, n);
                            let v = compute_chain(fb, seed, 8);
                            let a0 = fb.load_var(acc);
                            let a1 = fb.alu(AluOp::Add, a0, v);
                            fb.store_var(acc, a1);
                            let w2 = fb.alu(AluOp::Sub, w, 1i64);
                            fb.store(ws, w2);
                            fb.if_then(Cond::Le, w2, 0i64, |fb| {
                                let ds = fb.frame_ref(done, Operand::Reg(n), 8);
                                fb.store(ds, 1i64);
                            });
                        },
                        // Internal fiber: check-and-yield on the children.
                        |fb| {
                            let l = fb.alu(AluOp::Mul, n, 2i64);
                            let l = fb.alu(AluOp::Add, l, 1i64);
                            let r = fb.alu(AluOp::Add, l, 1i64);
                            let lds = fb.frame_ref(done, Operand::Reg(l), 8);
                            let ld = fb.load(lds);
                            let rds = fb.frame_ref(done, Operand::Reg(r), 8);
                            let rd = fb.load(rds);
                            let both = fb.alu(AluOp::And, ld, rd);
                            fb.if_then(Cond::Ne, both, 0i64, |fb| {
                                let seed = fb.alu(AluOp::Add, tid, n);
                                let v = compute_chain(fb, seed, 5);
                                let a0 = fb.load_var(acc);
                                let a1 = fb.alu(AluOp::Add, a0, v);
                                fb.store_var(acc, a1);
                                let ds = fb.frame_ref(done, Operand::Reg(n), 8);
                                fb.store(ds, 1i64);
                            });
                        },
                    );
                });
            });
        });

        // Root joined: broadcast the teardown signal and run every
        // fiber's cleanup handler.
        let signal = fb.var(8);
        fb.store_var(signal, 1i64);
        fb.for_range(0i64, NODES, 1, |fb, n| {
            let s = fb.load_var(signal);
            fb.if_then(Cond::Ne, s, 0i64, |fb| {
                let seed = fb.alu(AluOp::Mul, n, 31i64);
                let seed = fb.alu(AluOp::Xor, seed, tid);
                let v = compute_chain(fb, seed, 3);
                let a0 = fb.load_var(acc);
                let a1 = fb.alu(AluOp::Xor, a0, v);
                fb.store_var(acc, a1);
                let ds = fb.frame_ref(done, Operand::Reg(n), 8);
                fb.store(ds, 2i64);
            });
        });

        let wrapped = fb.alu(AluOp::And, tid, 4095i64);
        let m = elem8(fb, g_out, wrapped);
        let v = fb.load_var(acc);
        fb.store(m, v);
        fb.ret(None);
    });
    Workload {
        meta: meta(
            "coop_jointree",
            "fiber join tree, check-and-yield parents, signal-driven teardown",
            128,
            false,
        ),
        program: pb.build().expect("coop_jointree builds"),
        kernel,
        init: None,
    }
}

/// Divergence-free control variant: the [`coop_rr`] scheduler skeleton
/// (same jump-table dispatch) with fixed, thread-invariant budgets.
/// Every thread makes identical scheduling decisions, so all models
/// must agree and report zero divergences — the family's baseline.
pub fn coop_yield() -> Workload {
    const SLICES: i64 = 6;

    let mut pb = ProgramBuilder::new();
    let g_out = pb.global("yield_out", 8 * 4096);
    let kernel = pb.function("coop_yield", 1, |fb| {
        let tid = fb.arg(0);
        let acc = fb.var(8);
        fb.store_var(acc, 0i64);
        fb.for_range(0i64, SLICES, 1, |fb, round| {
            fb.for_range(0i64, FIBERS, 1, |fb, f| {
                let join = fb.new_block();
                let handlers: Vec<_> = (0..FIBERS).map(|_| fb.new_block()).collect();
                fb.switch(f, 0, handlers.clone(), join);
                for (i, &h) in handlers.iter().enumerate() {
                    fb.switch_to(h);
                    let seed = fb.alu(AluOp::Add, tid, round);
                    let v = compute_chain(fb, seed, 4 + 2 * i);
                    let a0 = fb.load_var(acc);
                    let a1 = fb.alu(AluOp::Add, a0, v);
                    fb.store_var(acc, a1);
                    fb.jmp(join);
                }
                fb.switch_to(join);
            });
        });
        let wrapped = fb.alu(AluOp::And, tid, 4095i64);
        let m = elem8(fb, g_out, wrapped);
        let v = fb.load_var(acc);
        fb.store(m, v);
        fb.ret(None);
    });
    Workload {
        meta: meta(
            "coop_yield",
            "round-robin scheduler skeleton with thread-invariant budgets (convergent control)",
            128,
            false,
        ),
        program: pb.build().expect("coop_yield builds"),
        kernel,
        init: None,
    }
}
