#![warn(missing_docs)]

//! # ThreadFuser workload suite
//!
//! TFIR implementations of the 36 MIMD CPU workloads of the paper's
//! Table I, plus a cooperative-threading extension family (`coop_*`)
//! modeling user-level schedulers, bounded channels, and join trees.
//! Each workload models the control-flow, memory-access, and
//! synchronization *structure* of its namesake — the properties the
//! ThreadFuser analysis actually consumes — at laptop-friendly input
//! sizes (the paper's thread counts are preserved as metadata).
//!
//! | Suite | Workloads |
//! |-------|-----------|
//! | Rodinia 3.1 | `bfs`, `nn`, `streamcluster`, `btree`, `particlefilter` |
//! | Paropoly | `paropoly_bfs`, `cc`, `pagerank`, `nbody` |
//! | Micro | `vectoradd`, `uncoalesced` |
//! | μSuite | `mcrouter_memcached`, `mcrouter_mid`, `mcrouter_leaf`, `textsearch_mid`, `textsearch_leaf`, `hdsearch_mid`, `hdsearch_leaf` |
//! | DeathStarBench | `post`, `text`, `urlshort`, `uniqueid`, `usertag`, `user` |
//! | PARSEC 3.0 | `blackscholes`, `streamcluster_p`, `bodytrack`, `facesim`, `fluidanimate`, `freqmine`, `swaptions`, `vips`, `x264` |
//! | Others | `pigz`, `rotate`, `md5` |
//! | Cooperative | `coop_rr`, `coop_lottery`, `coop_channel`, `coop_jointree`, `coop_yield` |
//!
//! `hdsearch_mid_fixed` is the SIMT-aware variant of the paper's Fig. 7
//! case study (top-k-capped `getpoint`).
//!
//! ```
//! use threadfuser_workloads::{all, by_name};
//! assert_eq!(all().len(), 41);
//! let w = by_name("nbody").unwrap();
//! assert!(w.meta.has_gpu_impl);
//! ```

pub mod coop;
pub mod deathstar;
pub mod micro;
pub mod motifs;
pub mod other;
pub mod paropoly;
pub mod parsec;
pub mod rodinia;
pub mod usuite;

use threadfuser_ir::{FuncId, Program};

/// Benchmark suite a workload belongs to (paper Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia 3.1 (OpenMP ↔ CUDA correlation set).
    Rodinia,
    /// Paropoly (pthread reimplementations, correlation set).
    Paropoly,
    /// Hand-written microbenchmarks (correlation set).
    Micro,
    /// μSuite microservices.
    USuite,
    /// DeathStarBench microservices.
    DeathStarBench,
    /// PARSEC 3.0.
    Parsec,
    /// Standalone applications (pigz, rotate, md5).
    Other,
    /// Cooperative-threading extension family (user-level schedulers,
    /// channels, join trees) — not a paper Table-I suite.
    Coop,
}

/// Static facts about a workload (paper Table I row).
#[derive(Debug, Clone)]
pub struct WorkloadMeta {
    /// Canonical name.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// One-line description of the modelled structure.
    pub description: &'static str,
    /// `#SIMT Threads` from Table I.
    pub paper_threads: u32,
    /// Default simulated threads in this repo (scaled for test speed).
    pub default_threads: u32,
    /// In the paper's 11-workload GPU-correlation set.
    pub has_gpu_impl: bool,
    /// Exercises mutexes (candidates for Fig. 9).
    pub uses_locks: bool,
}

/// A ready-to-run workload: program + kernel + metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Static facts.
    pub meta: WorkloadMeta,
    /// The TFIR program.
    pub program: Program,
    /// Kernel function (one invocation per logical thread).
    pub kernel: FuncId,
    /// Optional single-threaded setup function.
    pub init: Option<FuncId>,
}

/// Builds every studied workload: the 36 Table-I entries plus the 5
/// cooperative-threading extensions (41 total; the Fig. 7 `_fixed`
/// variant is separate, see [`usuite::hdsearch_mid_fixed`]).
pub fn all() -> Vec<Workload> {
    vec![
        // Correlation set (11).
        rodinia::bfs(),
        rodinia::nn(),
        rodinia::streamcluster(),
        rodinia::btree(),
        rodinia::particlefilter(),
        paropoly::bfs(),
        paropoly::cc(),
        paropoly::pagerank(),
        paropoly::nbody(),
        micro::vectoradd(),
        micro::uncoalesced(),
        // μSuite (7).
        usuite::mcrouter_memcached(),
        usuite::mcrouter_mid(),
        usuite::mcrouter_leaf(),
        usuite::textsearch_mid(),
        usuite::textsearch_leaf(),
        usuite::hdsearch_mid(),
        usuite::hdsearch_leaf(),
        // DeathStarBench (6).
        deathstar::post(),
        deathstar::text(),
        deathstar::urlshort(),
        deathstar::uniqueid(),
        deathstar::usertag(),
        deathstar::user(),
        // PARSEC (9).
        parsec::blackscholes(),
        parsec::streamcluster_p(),
        parsec::bodytrack(),
        parsec::facesim(),
        parsec::fluidanimate(),
        parsec::freqmine(),
        parsec::swaptions(),
        parsec::vips(),
        parsec::x264(),
        // Others (3).
        other::rotate(),
        other::md5(),
        other::pigz(),
        // Cooperative-threading family (5).
        coop::coop_rr(),
        coop::coop_lottery(),
        coop::coop_channel(),
        coop::coop_jointree(),
        coop::coop_yield(),
    ]
}

/// Looks a workload up by name (also resolves `hdsearch_mid_fixed`).
pub fn by_name(name: &str) -> Option<Workload> {
    if name == "hdsearch_mid_fixed" {
        return Some(usuite::hdsearch_mid_fixed());
    }
    all().into_iter().find(|w| w.meta.name == name)
}

/// The 11 workloads with GPU counterparts (paper §IV correlation study).
pub fn correlation_set() -> Vec<Workload> {
    all().into_iter().filter(|w| w.meta.has_gpu_impl).collect()
}

/// The 13 microservice workloads (μSuite + DeathStarBench), the subjects
/// of Figs. 8–10.
pub fn microservices() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| matches!(w.meta.suite, Suite::USuite | Suite::DeathStarBench))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exactly_41_workloads() {
        assert_eq!(all().len(), 41);
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = all().iter().map(|w| w.meta.name).collect();
        assert_eq!(names.len(), 41);
    }

    #[test]
    fn five_coop_workloads() {
        let coop: Vec<&str> =
            all().iter().filter(|w| w.meta.suite == Suite::Coop).map(|w| w.meta.name).collect();
        assert_eq!(
            coop,
            ["coop_rr", "coop_lottery", "coop_channel", "coop_jointree", "coop_yield"]
        );
        for name in coop {
            assert!(by_name(name).is_some(), "{name} must resolve via by_name");
        }
    }

    #[test]
    fn eleven_correlation_workloads() {
        assert_eq!(correlation_set().len(), 11);
    }

    #[test]
    fn thirteen_microservices() {
        assert_eq!(microservices().len(), 13);
    }

    #[test]
    fn all_programs_validate() {
        for w in all() {
            w.program.validate().unwrap_or_else(|e| panic!("{}: {e}", w.meta.name));
            // Kernel must take exactly the thread id.
            assert_eq!(w.program.function(w.kernel).params, 1, "{} kernel arity", w.meta.name);
            if let Some(init) = w.init {
                assert_eq!(w.program.function(init).params, 0, "{} init arity", w.meta.name);
            }
        }
    }

    #[test]
    fn by_name_resolves_fixed_variant() {
        assert!(by_name("hdsearch_mid_fixed").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn paper_thread_counts_match_table1() {
        let expect = [
            ("bfs", 4096),
            ("nn", 42 * 1024),
            ("streamcluster", 16 * 1024),
            ("btree", 4096),
            ("particlefilter", 4096),
            ("paropoly_bfs", 4096),
            ("cc", 4096),
            ("pagerank", 4096),
            ("nbody", 4096),
            ("vectoradd", 1024),
            ("uncoalesced", 1024),
            ("pigz", 128),
            ("swaptions", 512),
        ];
        let ws = all();
        for (name, n) in expect {
            let w = ws.iter().find(|w| w.meta.name == name).unwrap();
            assert_eq!(w.meta.paper_threads, n, "{name}");
        }
    }
}
