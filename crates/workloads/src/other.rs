//! Standalone applications: `pigz` (parallel gzip), `rotate` (image
//! rotation), and `md5` (digest) — the "Others" column of Table I.

use crate::motifs::elem8;
use crate::{Suite, Workload, WorkloadMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threadfuser_ir::{AluOp, Cond, Operand, ProgramBuilder};

fn meta(
    name: &'static str,
    description: &'static str,
    paper_threads: u32,
    default_threads: u32,
) -> WorkloadMeta {
    WorkloadMeta {
        name,
        suite: Suite::Other,
        description,
        paper_threads,
        default_threads,
        has_gpu_impl: false,
        uses_locks: false,
    }
}

/// rotate: per-pixel coordinate transform — uniform arithmetic, gathered
/// reads, coalesced writes; high SIMT efficiency.
pub fn rotate() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x2070);
    const W: i64 = 64;
    const H: i64 = 64;
    let img: Vec<i64> = (0..(W * H) as usize).map(|_| rng.gen_range(0..256)).collect();
    let mut pb = ProgramBuilder::new();
    let g_img = pb.global_i64("image", &img);
    let g_out = pb.global("rotated", 8 * (W * H) as u64);
    let kernel = pb.function("rotate_kernel", 1, |fb| {
        let tid = fb.arg(0);
        // Each thread rotates a row of pixels by 90°.
        let row = fb.alu(AluOp::Rem, tid, H);
        fb.for_range(0i64, W, 1, |fb, x| {
            let src0 = fb.alu(AluOp::Mul, row, W);
            let src = fb.alu(AluOp::Add, src0, x);
            let m = elem8(fb, g_img, src);
            let px = fb.load(m);
            // (x, y) -> (y, W-1-x)
            let dsty = fb.alu(AluOp::Sub, W - 1, x);
            let dst0 = fb.alu(AluOp::Mul, dsty, H);
            let dst = fb.alu(AluOp::Add, dst0, row);
            let mo = elem8(fb, g_out, dst);
            fb.store(mo, px);
        });
        fb.ret(None);
    });
    Workload {
        meta: meta("rotate", "90° image rotation, uniform transform", 1024, 256),
        program: pb.build().expect("rotate builds"),
        kernel,
        init: None,
    }
}

/// md5: fixed 64-round digest per message — the archetypal convergent
/// kernel (efficiency ≈100%, warp-size-insensitive).
pub fn md5() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x3D55);
    const MSGS: usize = 512;
    let msgs: Vec<i64> = (0..MSGS * 4).map(|_| rng.gen::<i64>()).collect();
    let mut pb = ProgramBuilder::new();
    let g_msgs = pb.global_i64("messages", &msgs);
    let g_out = pb.global("digests", 8 * 4096);
    let kernel = pb.function("md5_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let msg = fb.alu(AluOp::Rem, tid, MSGS as i64);
        let base = fb.alu(AluOp::Mul, msg, 4i64);
        // Load the 4-word block.
        let mut words = Vec::new();
        for w in 0..4i64 {
            let idx = fb.alu(AluOp::Add, base, w);
            let m = elem8(fb, g_msgs, idx);
            words.push(fb.load(m));
        }
        let a = fb.mov(0x6745_2301i64);
        let b = fb.mov(0xEFCD_AB89u32 as i64);
        let c = fb.mov(0x98BA_DCFEu32 as i64);
        let d = fb.mov(0x1032_5476i64);
        // 64 rounds of the boolean-mix schedule (fixed, branch-free).
        for round in 0..64usize {
            let w = words[round % 4];
            let f = match round / 16 {
                0 => {
                    let bc = fb.alu(AluOp::And, b, c);
                    let nb = fb.alu(AluOp::Xor, b, -1i64);
                    let nbd = fb.alu(AluOp::And, nb, d);
                    fb.alu(AluOp::Or, bc, nbd)
                }
                1 => {
                    let bd = fb.alu(AluOp::And, b, d);
                    let nd = fb.alu(AluOp::Xor, d, -1i64);
                    let cnd = fb.alu(AluOp::And, c, nd);
                    fb.alu(AluOp::Or, bd, cnd)
                }
                2 => {
                    let bc = fb.alu(AluOp::Xor, b, c);
                    fb.alu(AluOp::Xor, bc, d)
                }
                _ => {
                    let nd = fb.alu(AluOp::Xor, d, -1i64);
                    let bnd = fb.alu(AluOp::Or, b, nd);
                    fb.alu(AluOp::Xor, c, bnd)
                }
            };
            let t0 = fb.alu(AluOp::Add, a, f);
            let t1 = fb.alu(AluOp::Add, t0, w);
            let t2 = fb.alu(AluOp::Add, t1, (round as i64 + 1) * 0x5A82);
            let rot = fb.alu(AluOp::Shl, t2, ((round % 4) + 5) as i64);
            let rot2 = fb.alu(AluOp::Shr, t2, (64 - ((round % 4) + 5)) as i64);
            let rolled = fb.alu(AluOp::Or, rot, rot2);
            // rotate the working registers
            fb.mov_into(a, d);
            fb.mov_into(d, c);
            fb.mov_into(c, b);
            let nb = fb.alu(AluOp::Add, b, rolled);
            fb.mov_into(b, nb);
        }
        let ab = fb.alu(AluOp::Xor, a, b);
        let cd = fb.alu(AluOp::Xor, c, d);
        let digest = fb.alu(AluOp::Xor, ab, cd);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, digest);
        fb.ret(None);
    });
    Workload {
        meta: meta("md5", "64-round digest, fully convergent", 512, 256),
        program: pb.build().expect("md5 builds"),
        kernel,
        init: None,
    }
}

/// pigz: LZ77-style block compression — position scan with data-dependent
/// match-length inner loops and literal/match branching. The paper's
/// lowest-efficiency workload (≈10% at warp 32, 18% at warp 8).
pub fn pigz() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x9199);
    const BLOCK: i64 = 96;
    const BLOCKS: usize = 256;
    // Compressible-ish data: runs of repeated bytes with random breaks.
    let mut data = Vec::with_capacity(BLOCKS * BLOCK as usize);
    let mut cur = rng.gen_range(0..=255i64);
    for _ in 0..BLOCKS * BLOCK as usize {
        if rng.gen_bool(0.3) {
            cur = rng.gen_range(0..=255);
        }
        data.push(cur);
    }
    let mut pb = ProgramBuilder::new();
    let g_data = pb.global_i64("input", &data);
    let g_out = pb.global("compressed_len", 8 * 4096);
    let kernel = pb.function("pigz_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let blk = fb.alu(AluOp::Rem, tid, BLOCKS as i64);
        let base = fb.alu(AluOp::Mul, blk, BLOCK);
        let pos = fb.var(8);
        fb.store_var(pos, 0i64);
        let outlen = fb.var(8);
        fb.store_var(outlen, 0i64);
        // Scan the block; at each position try to extend a match against
        // the previous position (RLE-flavored LZ).
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(head);
        fb.switch_to(head);
        let p = fb.load_var(pos);
        fb.br(Cond::Lt, p, BLOCK - 1, body, exit);
        fb.switch_to(body);
        let here0 = fb.alu(AluOp::Add, base, p);
        let m_here = elem8(fb, g_data, here0);
        let byte = fb.load(m_here);
        // Match loop: how far does this byte repeat? (data-dependent)
        let run = fb.var(8);
        fb.store_var(run, 0i64);
        let mhead = fb.new_block();
        let mbody = fb.new_block();
        let mexit = fb.new_block();
        fb.jmp(mhead);
        fb.switch_to(mhead);
        let r = fb.load_var(run);
        let look0 = fb.alu(AluOp::Add, p, r);
        let look = fb.alu(AluOp::Add, look0, 1i64);
        fb.br(Cond::Lt, look, BLOCK, mbody, mexit);
        fb.switch_to(mbody);
        let idx = fb.alu(AluOp::Add, base, look);
        let m_next = elem8(fb, g_data, idx);
        let nb = fb.load(m_next);
        let matched = fb.new_block();
        let broke = fb.new_block();
        fb.br(Cond::Eq, nb, Operand::Reg(byte), matched, broke);
        fb.switch_to(matched);
        let r2 = fb.alu(AluOp::Add, r, 1i64);
        fb.store_var(run, r2);
        fb.jmp(mhead);
        fb.switch_to(broke);
        fb.jmp(mexit);
        fb.switch_to(mexit);
        // Emit literal or back-reference (divergent choice).
        let r = fb.load_var(run);
        let lit = fb.new_block();
        let refb = fb.new_block();
        let cont = fb.new_block();
        fb.br(Cond::Lt, r, 3i64, lit, refb);
        fb.switch_to(lit);
        let o = fb.load_var(outlen);
        let o2 = fb.alu(AluOp::Add, o, 1i64);
        fb.store_var(outlen, o2);
        let p1 = fb.alu(AluOp::Add, p, 1i64);
        fb.store_var(pos, p1);
        fb.jmp(cont);
        fb.switch_to(refb);
        // Huffman-ish encode of the run (a little extra work).
        let bits0 = fb.alu(AluOp::Mul, r, 5i64);
        let bits = fb.alu(AluOp::Sar, bits0, 2i64);
        let o = fb.load_var(outlen);
        let o2 = fb.alu(AluOp::Add, o, bits);
        let o3 = fb.alu(AluOp::Add, o2, 2i64);
        fb.store_var(outlen, o3);
        let skip0 = fb.alu(AluOp::Add, p, r);
        let skip = fb.alu(AluOp::Add, skip0, 1i64);
        fb.store_var(pos, skip);
        fb.jmp(cont);
        fb.switch_to(cont);
        fb.jmp(head);
        fb.switch_to(exit);
        let o = fb.load_var(outlen);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, o);
        fb.ret(None);
    });
    Workload {
        meta: meta("pigz", "LZ block compression, data-dependent matching", 128, 128),
        program: pb.build().expect("pigz builds"),
        kernel,
        init: None,
    }
}
