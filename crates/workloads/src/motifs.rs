//! Reusable program motifs shared by the workload suite.
//!
//! The 36 workloads of the paper's Table I are built from a small set of
//! recurring control/memory/synchronization patterns; this module provides
//! those patterns as builder helpers so each workload module stays focused
//! on the structure that makes it *that* workload.

use threadfuser_ir::{
    AccessSize, AluOp, Cond, FunctionBuilder, GlobalId, IoKind, MemRef, Operand, Reg,
};

/// Emits one xorshift64* mixing round of `state` in place — the workhorse
/// of hash-like, data-dependent value generation (deterministic and fast
/// to interpret).
pub fn xorshift_round(fb: &mut FunctionBuilder, state: Reg) {
    let a = fb.alu(AluOp::Shl, state, 13i64);
    fb.alu_into(state, AluOp::Xor, state, a);
    let b = fb.alu(AluOp::Shr, state, 7i64);
    fb.alu_into(state, AluOp::Xor, state, b);
    let c = fb.alu(AluOp::Shl, state, 17i64);
    fb.alu_into(state, AluOp::Xor, state, c);
}

/// Emits `n` dependent integer operations on a fresh accumulator seeded
/// from `seed`; returns the accumulator. Models a convergent compute
/// kernel body (identical work on every thread).
pub fn compute_chain(fb: &mut FunctionBuilder, seed: impl Into<Operand>, n: usize) -> Reg {
    let acc = fb.mov(seed);
    for i in 0..n {
        match i % 4 {
            0 => fb.alu_into(acc, AluOp::Add, acc, 0x9E37_79B9i64),
            1 => fb.alu_into(acc, AluOp::Xor, acc, 0x85EB_CA6Bi64),
            2 => fb.alu_into(acc, AluOp::Mul, acc, 31i64),
            _ => fb.alu_into(acc, AluOp::Sar, acc, 1i64),
        }
    }
    acc
}

/// Derives a bounded pseudo-random value `0..bound` from `key` with a few
/// mixing rounds; returns the register holding it. Thread-dependent but
/// deterministic — the source of data-dependent trip counts.
pub fn bounded_hash(fb: &mut FunctionBuilder, key: impl Into<Operand>, bound: i64) -> Reg {
    let h = fb.mov(key);
    fb.alu_into(h, AluOp::Mul, h, 0x2545_F491_4F6C_DD1Di64);
    xorshift_round(fb, h);
    let masked = fb.alu(AluOp::And, h, i64::MAX);
    fb.alu(AluOp::Rem, masked, bound.max(1))
}

/// Emits a loop running `count` (register) iterations of `body_ops`
/// dependent ALU operations — the canonical data-dependent-loop motif that
/// destroys SIMT efficiency when `count` varies across warp-mates.
pub fn variable_work(fb: &mut FunctionBuilder, count: Reg, body_ops: usize) {
    fb.for_range(0i64, Operand::Reg(count), 1, |fb, i| {
        let _ = compute_chain(fb, i, body_ops);
    });
}

/// Streams `len` sequential 8-byte elements of `buf[base..]`, folding them
/// into a returned accumulator. Fully coalesced when `base` is a linear
/// function of the thread id.
pub fn stream_sum(fb: &mut FunctionBuilder, buf: GlobalId, base: Reg, len: i64) -> Reg {
    let acc = fb.var(8);
    fb.store_var(acc, 0i64);
    fb.for_range(0i64, len, 1, |fb, i| {
        let idx = fb.alu(AluOp::Add, base, i);
        let m = fb.global_ref(buf, Operand::Reg(idx), 8);
        let v = fb.load(m);
        let a = fb.load_var(acc);
        let s = fb.alu(AluOp::Add, a, v);
        fb.store_var(acc, s);
    });
    fb.load_var(acc)
}

/// Emits a pointer-chase of `steps` hops through `next[]` starting at
/// `start`; returns the final node. Divergent in memory, convergent in
/// control (fixed step count).
pub fn pointer_chase(fb: &mut FunctionBuilder, next: GlobalId, start: Reg, steps: i64) -> Reg {
    let cur = fb.var(8);
    fb.store_var(cur, start);
    fb.for_range(0i64, steps, 1, |fb, _| {
        let c = fb.load_var(cur);
        let m = fb.global_ref(next, Operand::Reg(c), 8);
        let n = fb.load(m);
        fb.store_var(cur, n);
    });
    fb.load_var(cur)
}

/// Models parsing an RPC request: an I/O receive of `io_cost` skipped
/// instructions, a copy of the `fields` request words into a
/// stack-resident scratch buffer (address-taken, so it survives register
/// promotion — the source of the stack-segment divergence of Fig. 10),
/// and a checksum over the buffer.
pub fn receive_request(
    fb: &mut FunctionBuilder,
    reqs: GlobalId,
    tid: Reg,
    fields: i64,
    io_cost: u32,
) -> Reg {
    fb.io(IoKind::Read, io_cost);
    let base = fb.alu(AluOp::Mul, tid, fields);
    // Stack scratch buffer, register-indexed (never promotable).
    let buf = fb.frame_array(fields as u32, 8);
    for f in 0..fields {
        let idx = fb.alu(AluOp::Add, base, f);
        let m = fb.global_ref(reqs, Operand::Reg(idx), 8);
        let v = fb.load(m);
        let fi = fb.mov(f);
        let slot = fb.frame_ref(buf, Operand::Reg(fi), 8);
        fb.store(slot, v);
    }
    let acc = fb.var(8);
    fb.store_var(acc, 0i64);
    for f in 0..fields {
        let fi = fb.mov(f);
        let slot = fb.frame_ref(buf, Operand::Reg(fi), 8);
        let v = fb.load(slot);
        let a = fb.load_var(acc);
        let s = fb.alu(AluOp::Xor, a, v);
        fb.store_var(acc, s);
    }
    fb.load_var(acc)
}

/// Models sending an RPC response: `io_cost` skipped instructions.
pub fn send_response(fb: &mut FunctionBuilder, io_cost: u32) {
    fb.io(IoKind::Write, io_cost);
}

/// Acquires the `slot`-th lock of the lock array `locks`, runs `body`,
/// and releases — the fine-grained-locking motif of the microservice
/// workloads (paper Fig. 9).
pub fn with_lock(
    fb: &mut FunctionBuilder,
    locks: GlobalId,
    slot: Reg,
    body: impl FnOnce(&mut FunctionBuilder),
) {
    let m = fb.global_ref(locks, Operand::Reg(slot), 8);
    let addr = fb.lea(m);
    fb.acquire(Operand::Reg(addr));
    body(fb);
    fb.release(Operand::Reg(addr));
}

/// Probes the open-addressed hash table `table` (`capacity` 8-byte slots)
/// for `key`: up to `max_probes` linear probes, stopping early when the
/// slot matches `key` or is empty. Returns the last probed value. Mildly
/// divergent (probe counts differ per key).
pub fn hash_probe(
    fb: &mut FunctionBuilder,
    table: GlobalId,
    key: Reg,
    capacity: i64,
    max_probes: i64,
) -> Reg {
    let h = bounded_hash(fb, key, capacity);
    let pos = fb.var(8);
    fb.store_var(pos, h);
    let found = fb.var(8);
    fb.store_var(found, 0i64);
    let exit = fb.new_block();
    let head = fb.new_block();
    let body = fb.new_block();
    let iv = fb.var(8);
    fb.store_var(iv, 0i64);
    fb.jmp(head);

    fb.switch_to(head);
    let i = fb.load_var(iv);
    fb.br(Cond::Lt, i, max_probes, body, exit);

    fb.switch_to(body);
    let p = fb.load_var(pos);
    let m = fb.global_ref(table, Operand::Reg(p), 8);
    let v = fb.load(m);
    fb.store_var(found, v);
    // stop on hit or empty slot
    let hit = fb.new_block();
    let miss = fb.new_block();
    fb.br(Cond::Eq, v, key, hit, miss);
    fb.switch_to(hit);
    fb.jmp(exit);
    fb.switch_to(miss);
    let empty = fb.new_block();
    let next = fb.new_block();
    fb.br(Cond::Eq, v, 0i64, empty, next);
    fb.switch_to(empty);
    fb.jmp(exit);
    fb.switch_to(next);
    let p2 = fb.alu(AluOp::Add, p, 1i64);
    let wrapped = fb.alu(AluOp::Rem, p2, capacity);
    fb.store_var(pos, wrapped);
    let i2 = fb.alu(AluOp::Add, i, 1i64);
    fb.store_var(iv, i2);
    fb.jmp(head);

    fb.switch_to(exit);
    fb.load_var(found)
}

/// Reference to the `i`-th 8-byte element of global `g` via register index.
pub fn elem8(fb: &mut FunctionBuilder, g: GlobalId, idx: Reg) -> MemRef {
    fb.global_ref(g, Operand::Reg(idx), 8)
}

/// Reference to a fixed 8-byte element of global `g`.
pub fn elem8_const(g: GlobalId, idx: i64) -> MemRef {
    MemRef::global(g, None, idx * 8, AccessSize::B8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use threadfuser_ir::ProgramBuilder;

    #[test]
    fn motifs_produce_valid_programs() {
        let mut pb = ProgramBuilder::new();
        let data = pb.global("data", 8 * 1024);
        let table = pb.global("table", 8 * 256);
        let locks = pb.global("locks", 8 * 16);
        let reqs = pb.global("reqs", 8 * 1024);
        pb.function("k", 1, |fb| {
            let tid = fb.arg(0);
            let st = fb.mov(tid);
            xorshift_round(fb, st);
            let _c = compute_chain(fb, tid, 8);
            let n = bounded_hash(fb, tid, 16);
            variable_work(fb, n, 3);
            let base = fb.alu(AluOp::Mul, tid, 4i64);
            let _s = stream_sum(fb, data, base, 4);
            let _p = pointer_chase(fb, data, tid, 3);
            let key = receive_request(fb, reqs, tid, 4, 10);
            let _f = hash_probe(fb, table, key, 256, 8);
            let slot = fb.alu(AluOp::And, tid, 15i64);
            with_lock(fb, locks, slot, |fb| fb.nop());
            send_response(fb, 5);
            fb.ret(None);
        });
        let p = pb.build().expect("motif program must validate");
        assert!(p.static_inst_count() > 50);
    }
}
