//! μSuite microservices: McRouter (memcached/mid/leaf), TextSearch
//! (mid/leaf), and HDImageSearch (mid/leaf).
//!
//! `hdsearch_mid` reproduces the paper's Fig. 7 case study: half its
//! instructions come from a `getpoint` function whose FLANN-style
//! kd-bucket walk has data-dependent inner-loop trip counts, collapsing
//! SIMT efficiency; [`hdsearch_mid_fixed`] caps the walk at a fixed top-k,
//! recovering ~90% efficiency at unchanged result quality. `ProcessRequest`
//! and `vector_push` additionally serialize on the global allocator mutex,
//! mirroring the paper's glibc-malloc observation.

use crate::motifs::{
    bounded_hash, compute_chain, elem8, hash_probe, receive_request, send_response, with_lock,
};
use crate::{Suite, Workload, WorkloadMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threadfuser_ir::{AccessSize, AluOp, Cond, MemRef, Operand, ProgramBuilder};

fn meta(name: &'static str, description: &'static str, uses_locks: bool) -> WorkloadMeta {
    WorkloadMeta {
        name,
        suite: Suite::USuite,
        description,
        paper_threads: 2048,
        default_threads: 256,
        has_gpu_impl: false,
        uses_locks,
    }
}

const REQ_FIELDS: i64 = 4;
const TABLE_CAP: i64 = 1024;
const SHARDS: i64 = 32;

fn request_pool(rng: &mut StdRng, threads: usize) -> Vec<i64> {
    (0..threads * REQ_FIELDS as usize).map(|_| rng.gen_range(1..100_000)).collect()
}

/// Populates an open-addressed table at ~60% occupancy.
fn table_image(rng: &mut StdRng) -> Vec<i64> {
    let mut t = vec![0i64; TABLE_CAP as usize];
    for slot in t.iter_mut() {
        if rng.gen_bool(0.6) {
            *slot = rng.gen_range(1..100_000);
        }
    }
    t
}

fn mcrouter(
    name: &'static str,
    description: &'static str,
    io_in: u32,
    io_out: u32,
    compute: usize,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(0x3C20 ^ name.len() as u64);
    let reqs = request_pool(&mut rng, 1024);
    let table = table_image(&mut rng);

    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("requests", &reqs);
    let g_table = pb.global_i64("cache", &table);
    let g_locks = pb.global("shard_locks", 8 * SHARDS as u64);
    let g_out = pb.global("responses", 8 * 4096);
    let kernel = pb.function("mcrouter_handler", 1, |fb| {
        let tid = fb.arg(0);
        let key = receive_request(fb, g_reqs, tid, REQ_FIELDS, io_in);
        // Route: hash key, probe the cache table.
        let found = hash_probe(fb, g_table, key, TABLE_CAP, 8);
        // Miss path refreshes the shard under its lock (fine-grain).
        let shard = bounded_hash(fb, key, SHARDS);
        fb.if_then(Cond::Eq, found, 0i64, |fb| {
            with_lock(fb, g_locks, shard, |fb| {
                let slot = bounded_hash(fb, key, TABLE_CAP);
                let m = elem8(fb, g_table, slot);
                fb.store(m, key);
            });
        });
        // Service-specific compute.
        let digest = compute_chain(fb, found, compute);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, digest);
        send_response(fb, io_out);
        fb.ret(None);
    });
    Workload {
        meta: meta(name, description, true),
        program: pb.build().expect("mcrouter builds"),
        kernel,
        init: None,
    }
}

/// McRouter fronting memcached: route + cache probe + shard-locked refresh.
pub fn mcrouter_memcached() -> Workload {
    mcrouter("mcrouter_memcached", "key routing + cache probe + locked shard refresh", 18, 10, 32)
}

/// McRouter mid-tier: heavier routing fan-out, more I/O per request.
pub fn mcrouter_mid() -> Workload {
    mcrouter("mcrouter_mid", "mid-tier router, I/O-heavy fan-out", 40, 25, 16)
}

/// McRouter leaf: compute-leaning leaf node.
pub fn mcrouter_leaf() -> Workload {
    mcrouter("mcrouter_leaf", "leaf node, compute-leaning service", 12, 8, 64)
}

fn textsearch(
    name: &'static str,
    description: &'static str,
    docs: i64,
    terms: i64,
    io: u32,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(0x7E87 ^ docs as u64);
    let reqs = request_pool(&mut rng, 1024);
    let postings: Vec<i64> = (0..(docs * terms) as usize).map(|_| rng.gen_range(0..1000)).collect();

    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("queries", &reqs);
    let g_post = pb.global_i64("postings", &postings);
    let g_out = pb.global("scores", 8 * 4096);
    let kernel = pb.function("textsearch_handler", 1, |fb| {
        let tid = fb.arg(0);
        let q = receive_request(fb, g_reqs, tid, REQ_FIELDS, io);
        // Fixed-shape scoring: every request scores the same doc × term
        // grid — the paper's "remarkable SIMT efficiency" case.
        let best = fb.var(8);
        fb.store_var(best, 0i64);
        fb.for_range(0i64, docs, 1, |fb, d| {
            let score = fb.var(8);
            fb.store_var(score, 0i64);
            fb.for_range(0i64, terms, 1, |fb, t| {
                let off = fb.alu(AluOp::Mul, d, terms);
                let idx = fb.alu(AluOp::Add, off, t);
                let m = elem8(fb, g_post, idx);
                let w = fb.load(m);
                let qterm = fb.alu(AluOp::Xor, q, t);
                let mix = fb.alu(AluOp::And, qterm, 0xFFi64);
                let contrib = fb.alu(AluOp::Mul, w, mix);
                let s = fb.load_var(score);
                let s2 = fb.alu(AluOp::Add, s, contrib);
                fb.store_var(score, s2);
            });
            let s = fb.load_var(score);
            let b = fb.load_var(best);
            let mx = fb.alu(AluOp::Max, s, b);
            fb.store_var(best, mx);
        });
        let b = fb.load_var(best);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, b);
        send_response(fb, io / 2);
        fb.ret(None);
    });
    Workload {
        meta: meta(name, description, false),
        program: pb.build().expect("textsearch builds"),
        kernel,
        init: None,
    }
}

/// TextSearch mid-tier: top-k merge over fixed-shape shard results.
pub fn textsearch_mid() -> Workload {
    textsearch("textsearch_mid", "fixed-grid scoring + top-k merge (mid)", 8, 8, 40)
}

/// TextSearch leaf: posting-list dot products, fully regular.
pub fn textsearch_leaf() -> Workload {
    textsearch("textsearch_leaf", "posting-list scoring (leaf)", 16, 8, 25)
}

const HD_TABLES: i64 = 2;
const HD_MASKS: i64 = 2;

/// Core of the Fig. 7 case study. `fixed_topk = None` models the original
/// FLANN `getpoint` with data-dependent bucket sizes; `Some(k)` is the
/// SIMT-aware rewrite that always returns the first `k` candidates.
fn hdsearch(name: &'static str, description: &'static str, fixed_topk: Option<i64>) -> Workload {
    let mut rng = StdRng::seed_from_u64(0x4D53);
    let reqs = request_pool(&mut rng, 1024);
    // Heavy-tailed bucket sizes: almost all tiny, a few enormous — the
    // kd-bucket occupancy law that destroys lock-step efficiency.
    let buckets: Vec<i64> = (0..2048)
        .map(|_| {
            // 92% near-empty buckets, 8% very heavy ones.
            if rng.gen_bool(0.08) {
                rng.gen_range(96..192)
            } else {
                rng.gen_range(0..4)
            }
        })
        .collect();

    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("queries", &reqs);
    let g_bucket = pb.global_i64("bucket_sizes", &buckets);
    let g_points = pb.global("point_store", 8 << 16);
    let g_out = pb.global("results", 8 * 4096);
    let g_alloc_lock = pb.global("malloc_mutex", 8);

    // vector::push_back — allocation serialized on the global glibc-style
    // allocator mutex (the paper's ProcessRequest/vector bottleneck).
    let vector_push = pb.declare("vector_push");
    pb.define(vector_push, 1, |fb| {
        let val = fb.arg(0);
        let l = fb.lea(MemRef::global(g_alloc_lock, None, 0, AccessSize::B8));
        fb.acquire(Operand::Reg(l));
        let buf = fb.alloc(256i64);
        fb.release(Operand::Reg(l));
        // Grow-and-copy: the vector reallocation loop (fixed 16 elements).
        fb.for_range(0i64, 16i64, 1, |fb, i| {
            let mixed = fb.alu(AluOp::Xor, val, i);
            let m = fb.ptr_ref(buf, Operand::Reg(i), 8, 0);
            fb.store(m, mixed);
        });
        fb.free(Operand::Reg(buf));
        fb.ret(Some(Operand::Reg(val)));
    });

    // getpoint — Listing 1: table × xor-mask × data-dependent point loop.
    let getpoint = pb.declare("getpoint");
    pb.define(getpoint, 1, |fb| {
        let key = fb.arg(0);
        let acc = fb.var(8);
        fb.store_var(acc, 0i64);
        fb.for_range(0i64, HD_TABLES, 1, |fb, table| {
            fb.for_range(0i64, HD_MASKS, 1, |fb, mask| {
                let sub_key = fb.alu(AluOp::Xor, key, mask);
                let mixed = fb.alu(AluOp::Mul, sub_key, 0x9E37i64);
                let t_off = fb.alu(AluOp::Mul, table, 512i64);
                let h = fb.alu(AluOp::And, mixed, 511i64);
                let slot = fb.alu(AluOp::Add, t_off, h);
                let num_point = match fixed_topk {
                    // SIMT-aware fix: uniform trip count for all threads.
                    Some(k) => fb.mov(k),
                    // Original: bucket occupancy decides the trip count.
                    None => {
                        let m = elem8(fb, g_bucket, slot);
                        fb.load(m)
                    }
                };
                fb.for_range(0i64, Operand::Reg(num_point), 1, |fb, j| {
                    let p_idx = fb.alu(AluOp::Add, slot, j);
                    let wrapped = fb.alu(AluOp::And, p_idx, (1 << 13) - 1i64);
                    let m = elem8(fb, g_points, wrapped);
                    let p = fb.load(m);
                    let a = fb.load_var(acc);
                    let s = fb.alu(AluOp::Add, a, p);
                    fb.store_var(acc, s);
                });
            });
        });
        let r = fb.load_var(acc);
        fb.ret(Some(Operand::Reg(r)));
    });

    // ProcessRequest — parse + allocator-serialized response object.
    let process_request = pb.declare("process_request");
    pb.define(process_request, 1, |fb| {
        let raw = fb.arg(0);
        // Deserialize a variable number of protobuf-ish fields (3..=5):
        // a light residual divergence even in the fixed variant.
        let extra = bounded_hash(fb, raw, 3);
        let nfields = fb.alu(AluOp::Add, extra, 3i64);
        let parsed = fb.var(8);
        fb.store_var(parsed, raw);
        fb.for_range(0i64, Operand::Reg(nfields), 1, |fb, i| {
            let salted = fb.alu(AluOp::Add, raw, i);
            let fieldv = compute_chain(fb, salted, 12);
            let p = fb.load_var(parsed);
            let x = fb.alu(AluOp::Xor, p, fieldv);
            fb.store_var(parsed, x);
        });
        // Fixed-shape decode pass.
        fb.for_range(0i64, 8i64, 1, |fb, i| {
            let _ = compute_chain(fb, i, 8);
        });
        let l = fb.lea(MemRef::global(g_alloc_lock, None, 0, AccessSize::B8));
        fb.acquire(Operand::Reg(l));
        let obj = fb.alloc(128i64);
        fb.release(Operand::Reg(l));
        let pv = fb.load_var(parsed);
        let m = fb.ptr_ref(obj, Operand::Imm(0), 8, 0);
        fb.store(m, pv);
        let m2 = fb.ptr_ref(obj, Operand::Imm(0), 8, 0);
        let v = fb.load(m2);
        fb.free(Operand::Reg(obj));
        fb.ret(Some(Operand::Reg(v)));
    });

    let kernel = pb.declare("hdsearch_handler");
    pb.define(kernel, 1, |fb| {
        let tid = fb.arg(0);
        let raw = receive_request(fb, g_reqs, tid, REQ_FIELDS, 35);
        let key = fb.call(process_request, &[Operand::Reg(raw)]);
        let result = fb.call(getpoint, &[Operand::Reg(key)]);
        let stored = fb.call(vector_push, &[Operand::Reg(result)]);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, stored);
        send_response(fb, 18);
        fb.ret(None);
    });

    Workload {
        meta: meta(name, description, true),
        program: pb.build().expect("hdsearch builds"),
        kernel,
        init: None,
    }
}

/// HDImageSearch mid-tier: the paper's low-efficiency case study (≈7%
/// before the fix) — `getpoint` dominates with divergent bucket walks.
pub fn hdsearch_mid() -> Workload {
    hdsearch("hdsearch_mid", "FLANN-style getpoint with data-dependent bucket walks", None)
}

/// The SIMT-aware rewrite of [`hdsearch_mid`]: `getpoint` returns a fixed
/// top-10, making every thread's walk uniform (paper: 6% → 90%).
pub fn hdsearch_mid_fixed() -> Workload {
    hdsearch("hdsearch_mid_fixed", "getpoint capped at top-10: uniform walks", Some(10))
}

/// HDImageSearch leaf: dense distance computations, regular and
/// high-efficiency.
pub fn hdsearch_leaf() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x4D4C);
    let reqs = request_pool(&mut rng, 1024);
    let vectors: Vec<i64> = (0..64 * 16).map(|_| rng.gen_range(-100..100)).collect();

    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("queries", &reqs);
    let g_vecs = pb.global_i64("vectors", &vectors);
    let g_out = pb.global("results", 8 * 4096);
    let kernel = pb.function("hdsearch_leaf_handler", 1, |fb| {
        let tid = fb.arg(0);
        let q = receive_request(fb, g_reqs, tid, REQ_FIELDS, 30);
        let best = fb.var(8);
        fb.store_var(best, i64::MAX);
        fb.for_range(0i64, 64i64, 1, |fb, v| {
            let base = fb.alu(AluOp::Mul, v, 16i64);
            let dist = fb.var(8);
            fb.store_var(dist, 0i64);
            fb.for_range(0i64, 16i64, 1, |fb, d| {
                let idx = fb.alu(AluOp::Add, base, d);
                let m = elem8(fb, g_vecs, idx);
                let x = fb.load(m);
                let qd = fb.alu(AluOp::Xor, q, d);
                let qv = fb.alu(AluOp::And, qd, 0x7Fi64);
                let diff = fb.alu(AluOp::Sub, x, qv);
                let sq = fb.alu(AluOp::Mul, diff, diff);
                let a = fb.load_var(dist);
                let s = fb.alu(AluOp::Add, a, sq);
                fb.store_var(dist, s);
            });
            let total = fb.load_var(dist);
            let b = fb.load_var(best);
            let mn = fb.alu(AluOp::Min, total, b);
            fb.store_var(best, mn);
        });
        let b = fb.load_var(best);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, b);
        send_response(fb, 20);
        fb.ret(None);
    });
    Workload {
        meta: meta("hdsearch_leaf", "dense distance scans (leaf), regular", false),
        program: pb.build().expect("hdsearch_leaf builds"),
        kernel,
        init: None,
    }
}
