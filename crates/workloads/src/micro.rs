//! Microbenchmarks (correlation set): vector multiply-add kernels with
//! coalesced (SoA) and uncoalesced (strided) access patterns — the
//! paper's two hand-written validation kernels.

use crate::motifs::elem8;
use crate::{Suite, Workload, WorkloadMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threadfuser_ir::{AluOp, ProgramBuilder};

const N: usize = 1024;
const PER_THREAD: i64 = 4;

fn meta(name: &'static str, description: &'static str) -> WorkloadMeta {
    WorkloadMeta {
        name,
        suite: Suite::Micro,
        description,
        paper_threads: 1024,
        default_threads: 256,
        has_gpu_impl: true,
        uses_locks: false,
    }
}

fn build(name: &'static str, description: &'static str, coalesced: bool) -> Workload {
    let mut rng = StdRng::seed_from_u64(if coalesced { 0x7EC } else { 0xBAD });
    let a: Vec<i64> = (0..N * PER_THREAD as usize).map(|_| rng.gen_range(-50..50)).collect();
    let b: Vec<i64> = (0..N * PER_THREAD as usize).map(|_| rng.gen_range(-50..50)).collect();

    let mut pb = ProgramBuilder::new();
    let g_a = pb.global_i64("a", &a);
    let g_b = pb.global_i64("b", &b);
    let g_c = pb.global("c", 8 * (N as u64) * PER_THREAD as u64);
    let kernel = pb.function("vec_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let t = fb.alu(AluOp::Rem, tid, N as i64);
        fb.for_range(0i64, PER_THREAD, 1, |fb, i| {
            // SoA (column) indexing coalesces; row-major striding does not.
            let idx = if coalesced {
                let off = fb.alu(AluOp::Mul, i, N as i64);
                fb.alu(AluOp::Add, off, t)
            } else {
                let off = fb.alu(AluOp::Mul, t, PER_THREAD);
                fb.alu(AluOp::Add, off, i)
            };
            let ma = elem8(fb, g_a, idx);
            let av = fb.load(ma);
            let mb = elem8(fb, g_b, idx);
            let bv = fb.load(mb);
            let prod = fb.alu(AluOp::Mul, av, bv);
            let fma = fb.alu(AluOp::Add, prod, 7i64);
            let mc = elem8(fb, g_c, idx);
            fb.store(mc, fma);
        });
        fb.ret(None);
    });
    Workload {
        meta: meta(name, description),
        program: pb.build().expect("vector kernel builds"),
        kernel,
        init: None,
    }
}

/// Coalesced vector multiply-add (SoA layout): 100% SIMT efficiency and
/// ideal 8-transactions-per-instruction memory behaviour.
pub fn vectoradd() -> Workload {
    build("vectoradd", "SoA vector multiply-add, fully coalesced", true)
}

/// The same arithmetic with row-major striding: identical control
/// efficiency, maximal memory divergence — the pair isolates coalescing.
pub fn uncoalesced() -> Workload {
    build("uncoalesced", "strided vector multiply-add, uncoalesced", false)
}
