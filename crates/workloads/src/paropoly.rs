//! Paropoly workloads (correlation set): pthread reimplementations of
//! BFS, Connected Components, PageRank, and N-body — the "complex control
//! flow" suite of the paper's §IV.

use crate::motifs::elem8;
use crate::{Suite, Workload, WorkloadMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threadfuser_ir::{AluOp, Cond, Operand, ProgramBuilder};

fn meta(name: &'static str, description: &'static str) -> WorkloadMeta {
    WorkloadMeta {
        name,
        suite: Suite::Paropoly,
        description,
        paper_threads: 4096,
        default_threads: 256,
        has_gpu_impl: true,
        uses_locks: false,
    }
}

/// Power-law-ish degree CSR: most nodes tiny, a few hubs.
fn powerlaw_csr(rng: &mut StdRng, n: usize, max_deg: usize) -> (Vec<i64>, Vec<i64>) {
    let mut row = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    row.push(0i64);
    for _ in 0..n {
        let r: f64 = rng.gen_range(0.0..1.0);
        let deg = ((r * r * r) * max_deg as f64) as usize + 1;
        for _ in 0..deg {
            col.push(rng.gen_range(0..n) as i64);
        }
        row.push(col.len() as i64);
    }
    (row, col)
}

/// Paropoly BFS: like the Rodinia kernel but over a power-law graph plus a
/// visited-flag branch — lower efficiency, strong warp-size sensitivity.
pub fn bfs() -> Workload {
    const NODES: usize = 512;
    let mut rng = StdRng::seed_from_u64(0x9A70);
    let (row, col) = powerlaw_csr(&mut rng, NODES, 48);
    let visited: Vec<i64> = (0..NODES).map(|_| i64::from(rng.gen_bool(0.35))).collect();

    let mut pb = ProgramBuilder::new();
    let g_row = pb.global_i64("row_ptr", &row);
    let g_col = pb.global_i64("col", &col);
    let g_vis = pb.global_i64("visited", &visited);
    let g_out = pb.global("frontier_out", 8 * NODES as u64);
    let kernel = pb.function("pbfs_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let node = fb.alu(AluOp::Rem, tid, NODES as i64);
        let mv = elem8(fb, g_vis, node);
        let seen = fb.load(mv);
        let count = fb.var(8);
        fb.store_var(count, 0i64);
        // Only unvisited nodes expand — an extra divergence layer.
        fb.if_then(Cond::Eq, seen, 0i64, |fb| {
            let ms = elem8(fb, g_row, node);
            let start = fb.load(ms);
            let n1 = fb.alu(AluOp::Add, node, 1i64);
            let me = elem8(fb, g_row, n1);
            let end = fb.load(me);
            fb.for_range(Operand::Reg(start), Operand::Reg(end), 1, |fb, e| {
                let mc = elem8(fb, g_col, e);
                let nbr = fb.load(mc);
                let mnv = elem8(fb, g_vis, nbr);
                let nv = fb.load(mnv);
                fb.if_then(Cond::Eq, nv, 0i64, |fb| {
                    let c = fb.load_var(count);
                    let c2 = fb.alu(AluOp::Add, c, 1i64);
                    fb.store_var(count, c2);
                });
            });
        });
        let c = fb.load_var(count);
        let mo = elem8(fb, g_out, node);
        fb.store(mo, c);
        fb.ret(None);
    });
    Workload {
        meta: meta("paropoly_bfs", "power-law BFS with visited-flag gating"),
        program: pb.build().expect("paropoly bfs builds"),
        kernel,
        init: None,
    }
}

/// Connected Components: per-edge hooking with union-find root chasing —
/// pointer chasing of data-dependent depth.
pub fn cc() -> Workload {
    const NODES: usize = 512;
    let mut rng = StdRng::seed_from_u64(0xCC01);
    // Parent forest with shallow random chains.
    let mut parent: Vec<i64> = (0..NODES as i64).collect();
    for p in parent.iter_mut() {
        if rng.gen_bool(0.6) {
            *p = rng.gen_range(0..NODES) as i64;
        }
    }
    let us: Vec<i64> = (0..NODES).map(|_| rng.gen_range(0..NODES) as i64).collect();
    let vs: Vec<i64> = (0..NODES).map(|_| rng.gen_range(0..NODES) as i64).collect();

    let mut pb = ProgramBuilder::new();
    let g_parent = pb.global_i64("parent", &parent);
    let g_u = pb.global_i64("edge_u", &us);
    let g_v = pb.global_i64("edge_v", &vs);
    let g_out = pb.global("roots", 8 * NODES as u64);

    // find_root(x): walk parents until fixpoint or depth cap.
    let find_root = pb.declare("find_root");
    pb.define(find_root, 1, |fb| {
        let x = fb.arg(0);
        let cur = fb.var(8);
        fb.store_var(cur, x);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        let steps = fb.var(8);
        fb.store_var(steps, 0i64);
        fb.jmp(head);
        fb.switch_to(head);
        let s = fb.load_var(steps);
        fb.br(Cond::Lt, s, 16i64, body, exit);
        fb.switch_to(body);
        let c = fb.load_var(cur);
        let mp = elem8(fb, g_parent, c);
        let p = fb.load(mp);
        let fixed = fb.new_block();
        let advance = fb.new_block();
        fb.br(Cond::Eq, p, Operand::Reg(c), fixed, advance);
        fb.switch_to(fixed);
        fb.jmp(exit);
        fb.switch_to(advance);
        fb.store_var(cur, p);
        let s2 = fb.alu(AluOp::Add, s, 1i64);
        fb.store_var(steps, s2);
        fb.jmp(head);
        fb.switch_to(exit);
        let r = fb.load_var(cur);
        fb.ret(Some(Operand::Reg(r)));
    });

    let kernel = pb.function("cc_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let e = fb.alu(AluOp::Rem, tid, NODES as i64);
        let mu = elem8(fb, g_u, e);
        let u = fb.load(mu);
        let mv = elem8(fb, g_v, e);
        let v = fb.load(mv);
        let ru = fb.call(find_root, &[Operand::Reg(u)]);
        let rv = fb.call(find_root, &[Operand::Reg(v)]);
        let combined = fb.alu(AluOp::Min, ru, rv);
        let mo = elem8(fb, g_out, e);
        fb.store(mo, combined);
        fb.ret(None);
    });
    Workload {
        meta: meta("cc", "union-find hooking with variable-depth root chase"),
        program: pb.build().expect("cc builds"),
        kernel,
        init: None,
    }
}

/// PageRank: per-node rank update over in-edges; moderate divergence from
/// degree variance, convergent arithmetic tail.
pub fn pagerank() -> Workload {
    const NODES: usize = 512;
    let mut rng = StdRng::seed_from_u64(0x9123);
    let (row, col) = powerlaw_csr(&mut rng, NODES, 24);
    let ranks: Vec<i64> = (0..NODES).map(|_| rng.gen_range(1..1000)).collect();
    let degs: Vec<i64> = (0..NODES).map(|i| (row[i + 1] - row[i]).max(1)).collect();

    let mut pb = ProgramBuilder::new();
    let g_row = pb.global_i64("row_ptr", &row);
    let g_col = pb.global_i64("col", &col);
    let g_rank = pb.global_i64("rank", &ranks);
    let g_deg = pb.global_i64("deg", &degs);
    let g_out = pb.global("rank_out", 8 * NODES as u64);
    let kernel = pb.function("pr_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let node = fb.alu(AluOp::Rem, tid, NODES as i64);
        let ms = elem8(fb, g_row, node);
        let start = fb.load(ms);
        let n1 = fb.alu(AluOp::Add, node, 1i64);
        let me = elem8(fb, g_row, n1);
        let end = fb.load(me);
        let sum = fb.var(8);
        fb.store_var(sum, 0i64);
        fb.for_range(Operand::Reg(start), Operand::Reg(end), 1, |fb, e| {
            let mc = elem8(fb, g_col, e);
            let src = fb.load(mc);
            let mr = elem8(fb, g_rank, src);
            let r = fb.load(mr);
            let md = elem8(fb, g_deg, src);
            let d = fb.load(md);
            let contrib = fb.alu(AluOp::Div, r, d);
            let s = fb.load_var(sum);
            let s2 = fb.alu(AluOp::Add, s, contrib);
            fb.store_var(sum, s2);
        });
        // rank = base + damping * sum (fixed-point)
        let s = fb.load_var(sum);
        let scaled = fb.alu(AluOp::Mul, s, 85i64);
        let damped = fb.alu(AluOp::Div, scaled, 100i64);
        let rank = fb.alu(AluOp::Add, damped, 15i64);
        let mo = elem8(fb, g_out, node);
        fb.store(mo, rank);
        fb.ret(None);
    });
    Workload {
        meta: meta("pagerank", "in-edge rank accumulation, degree-divergent"),
        program: pb.build().expect("pagerank builds"),
        kernel,
        init: None,
    }
}

/// N-body: all-pairs force accumulation — uniform inner loop with
/// broadcast loads; the paper's headline high-efficiency workload
/// (warp-size-insensitive, ≥95%).
pub fn nbody() -> Workload {
    const BODIES: usize = 64;
    let mut rng = StdRng::seed_from_u64(0x0B0D);
    let pos: Vec<i64> = (0..BODIES * 3).map(|_| rng.gen_range(-1000..1000)).collect();

    let mut pb = ProgramBuilder::new();
    let g_pos = pb.global_i64("pos", &pos);
    let g_out = pb.global("force", 8 * 4096 * 3);
    let kernel = pb.function("nbody_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let me = fb.alu(AluOp::Rem, tid, BODIES as i64);
        let mybase = fb.alu(AluOp::Mul, me, 3i64);
        let fx = fb.var(8);
        let fy = fb.var(8);
        let fz = fb.var(8);
        fb.store_var(fx, 0i64);
        fb.store_var(fy, 0i64);
        fb.store_var(fz, 0i64);
        let my = [fx, fy, fz];
        fb.for_range(0i64, BODIES as i64, 1, |fb, j| {
            let jbase = fb.alu(AluOp::Mul, j, 3i64);
            let mut dist2 = fb.mov(1i64);
            let mut deltas = Vec::new();
            for axis in 0..3i64 {
                let mi = fb.alu(AluOp::Add, mybase, axis);
                let mj = fb.alu(AluOp::Add, jbase, axis);
                let pm = elem8(fb, g_pos, mi);
                let pi = fb.load(pm);
                let pjm = elem8(fb, g_pos, mj);
                let pj = fb.load(pjm);
                let d = fb.alu(AluOp::Sub, pj, pi);
                let d2 = fb.alu(AluOp::Mul, d, d);
                dist2 = fb.alu(AluOp::Add, dist2, d2);
                deltas.push(d);
            }
            // inverse-square-ish force in fixed point (no branches)
            let inv = fb.alu(AluOp::Div, 1_000_000i64, dist2);
            for (axis, d) in deltas.into_iter().enumerate() {
                let f = fb.alu(AluOp::Mul, d, inv);
                let cur = fb.load_var(my[axis]);
                let s = fb.alu(AluOp::Add, cur, f);
                fb.store_var(my[axis], s);
            }
        });
        for (axis, v) in my.into_iter().enumerate() {
            let idx0 = fb.alu(AluOp::Mul, tid, 3i64);
            let idx = fb.alu(AluOp::Add, idx0, axis as i64);
            let val = fb.load_var(v);
            let mo = elem8(fb, g_out, idx);
            fb.store(mo, val);
        }
        fb.ret(None);
    });
    Workload {
        meta: meta("nbody", "all-pairs force, uniform loop + broadcast loads"),
        program: pb.build().expect("nbody builds"),
        kernel,
        init: None,
    }
}
