//! Rodinia 3.1 workloads (correlation set): BFS, Nearest Neighbors,
//! StreamCluster, B+Tree, and Particle Filter — the OpenMP applications
//! with identical CUDA implementations the paper validates against.

use crate::motifs::{bounded_hash, compute_chain, elem8};
use crate::{Suite, Workload, WorkloadMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threadfuser_ir::{AluOp, Cond, Operand, ProgramBuilder};

fn meta(
    name: &'static str,
    description: &'static str,
    paper_threads: u32,
    default_threads: u32,
) -> WorkloadMeta {
    WorkloadMeta {
        name,
        suite: Suite::Rodinia,
        description,
        paper_threads,
        default_threads,
        has_gpu_impl: true,
        uses_locks: false,
    }
}

/// Builds a CSR graph with `n` nodes and degrees in `1..=max_deg`.
fn csr(rng: &mut StdRng, n: usize, max_deg: usize) -> (Vec<i64>, Vec<i64>) {
    let mut row = Vec::with_capacity(n + 1);
    let mut col = Vec::new();
    row.push(0i64);
    for _ in 0..n {
        // Quadratic skew: many low-degree nodes, a few heavy hubs.
        let r: f64 = rng.gen_range(0.0..1.0);
        let deg = ((r * r * r) * max_deg as f64) as usize + 1;
        for _ in 0..deg {
            col.push(rng.gen_range(0..n) as i64);
        }
        row.push(col.len() as i64);
    }
    (row, col)
}

/// Breadth-first search: one thread per frontier node, iterating a
/// data-dependent number of CSR neighbors — the classic divergent graph
/// kernel (paper: jumps to 40% efficiency at warp size 8).
pub fn bfs() -> Workload {
    const NODES: usize = 512;
    let mut rng = StdRng::seed_from_u64(0xB1F5);
    let (row, col) = csr(&mut rng, NODES, 96);
    let dist: Vec<i64> = (0..NODES).map(|_| rng.gen_range(0..64)).collect();

    let mut pb = ProgramBuilder::new();
    let g_row = pb.global_i64("row_ptr", &row);
    let g_col = pb.global_i64("col", &col);
    let g_dist = pb.global_i64("dist", &dist);
    let g_out = pb.global("out", 8 * NODES as u64);
    let kernel = pb.function("bfs_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let node = fb.alu(AluOp::Rem, tid, NODES as i64);
        let m_start = elem8(fb, g_row, node);
        let start = fb.load(m_start);
        let node1 = fb.alu(AluOp::Add, node, 1i64);
        let m_end = elem8(fb, g_row, node1);
        let end = fb.load(m_end);
        let my_dist = {
            let m = elem8(fb, g_dist, node);
            fb.load(m)
        };
        let best = fb.var(8);
        fb.store_var(best, i64::MAX);
        // Data-dependent edge loop: the source of control divergence.
        fb.for_range(Operand::Reg(start), Operand::Reg(end), 1, |fb, e| {
            let m = elem8(fb, g_col, e);
            let nbr = fb.load(m);
            let m2 = elem8(fb, g_dist, nbr);
            let nd = fb.load(m2);
            let cand = fb.alu(AluOp::Add, nd, 1i64);
            let b = fb.load_var(best);
            fb.if_then(Cond::Lt, cand, Operand::Reg(b), |fb| {
                fb.store_var(best, cand);
            });
        });
        let b = fb.load_var(best);
        let relaxed = fb.alu(AluOp::Min, b, my_dist);
        let m_out = elem8(fb, g_out, node);
        fb.store(m_out, relaxed);
        fb.ret(None);
    });
    Workload {
        meta: meta("bfs", "CSR BFS frontier expansion, degree-divergent", 4096, 256),
        program: pb.build().expect("bfs builds"),
        kernel,
        init: None,
    }
}

/// Nearest Neighbors: one thread scores one AoS record against the query —
/// convergent control, strided (record-sized) memory accesses.
pub fn nn() -> Workload {
    const RECORDS: usize = 1024;
    const FIELDS: usize = 8;
    let mut rng = StdRng::seed_from_u64(0x4E4E);
    let recs: Vec<i64> = (0..RECORDS * FIELDS).map(|_| rng.gen_range(-100..100)).collect();
    let query: Vec<i64> = (0..FIELDS).map(|_| rng.gen_range(-100..100)).collect();

    let mut pb = ProgramBuilder::new();
    let g_recs = pb.global_i64("records", &recs);
    let g_query = pb.global_i64("query", &query);
    let g_out = pb.global("out", 8 * RECORDS as u64);
    let kernel = pb.function("nn_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let rec = fb.alu(AluOp::Rem, tid, RECORDS as i64);
        let base = fb.alu(AluOp::Mul, rec, FIELDS as i64);
        let acc = fb.var(8);
        fb.store_var(acc, 0i64);
        for f in 0..FIELDS as i64 {
            let idx = fb.alu(AluOp::Add, base, f);
            let m = elem8(fb, g_recs, idx);
            let rv = fb.load(m);
            let qf = fb.reg();
            fb.mov_into(qf, Operand::Mem(crate::motifs::elem8_const(g_query, f)));
            let d = fb.alu(AluOp::Sub, rv, qf);
            let d2 = fb.alu(AluOp::Mul, d, d);
            let a = fb.load_var(acc);
            let s = fb.alu(AluOp::Add, a, d2);
            fb.store_var(acc, s);
        }
        let dist = fb.load_var(acc);
        let m_out = elem8(fb, g_out, rec);
        fb.store(m_out, dist);
        fb.ret(None);
    });
    Workload {
        meta: meta("nn", "AoS record distance scan, convergent + strided", 42 * 1024, 256),
        program: pb.build().expect("nn builds"),
        kernel,
        init: None,
    }
}

/// StreamCluster: per-point assignment cost over a fixed center set with a
/// cheap conditional best-update — high efficiency, light divergence.
pub fn streamcluster() -> Workload {
    build_streamcluster(
        meta("streamcluster", "k-center assignment cost, near-convergent", 16 * 1024, 256),
        0x5C5C,
    )
}

/// Shared implementation for the Rodinia and PARSEC streamcluster variants
/// (the paper lists both; they differ in input regime).
pub(crate) fn build_streamcluster(meta: WorkloadMeta, seed: u64) -> Workload {
    const POINTS: usize = 512;
    const CENTERS: i64 = 8;
    const DIMS: i64 = 8;
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<i64> = (0..POINTS * DIMS as usize).map(|_| rng.gen_range(-50..50)).collect();
    let ctr: Vec<i64> = (0..(CENTERS * DIMS) as usize).map(|_| rng.gen_range(-50..50)).collect();

    let mut pb = ProgramBuilder::new();
    let g_pts = pb.global_i64("points", &pts);
    let g_ctr = pb.global_i64("centers", &ctr);
    let g_out = pb.global("assign", 8 * POINTS as u64);
    let kernel = pb.function("sc_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let p = fb.alu(AluOp::Rem, tid, POINTS as i64);
        let pbase = fb.alu(AluOp::Mul, p, DIMS);
        let best = fb.var(8);
        let best_c = fb.var(8);
        fb.store_var(best, i64::MAX);
        fb.store_var(best_c, 0i64);
        fb.for_range(0i64, CENTERS, 1, |fb, c| {
            let cbase = fb.alu(AluOp::Mul, c, DIMS);
            let cost = fb.var(8);
            fb.store_var(cost, 0i64);
            fb.for_range(0i64, DIMS, 1, |fb, d| {
                let pi = fb.alu(AluOp::Add, pbase, d);
                let ci = fb.alu(AluOp::Add, cbase, d);
                let mp = elem8(fb, g_pts, pi);
                let pv = fb.load(mp);
                let mc = elem8(fb, g_ctr, ci);
                let cv = fb.load(mc);
                let diff = fb.alu(AluOp::Sub, pv, cv);
                let sq = fb.alu(AluOp::Mul, diff, diff);
                let acc = fb.load_var(cost);
                let s = fb.alu(AluOp::Add, acc, sq);
                fb.store_var(cost, s);
            });
            let total = fb.load_var(cost);
            let b = fb.load_var(best);
            fb.if_then(Cond::Lt, total, Operand::Reg(b), |fb| {
                fb.store_var(best, total);
                fb.store_var(best_c, c);
            });
        });
        let winner = fb.load_var(best_c);
        let m_out = elem8(fb, g_out, p);
        fb.store(m_out, winner);
        fb.ret(None);
    });
    Workload { meta, program: pb.build().expect("streamcluster builds"), kernel, init: None }
}

/// B+Tree lookups: fixed-depth traversal with a key-dependent linear scan
/// inside each node — the data-dependent-scan motif.
pub fn btree() -> Workload {
    const FANOUT: i64 = 8;
    const DEPTH: i64 = 4;
    const NODES: usize = 1 + 8 + 64 + 512; // full tree of internal nodes
    let mut rng = StdRng::seed_from_u64(0xB7EE);
    // keys[node*FANOUT + i], ascending within a node.
    let mut keys = Vec::with_capacity(NODES * FANOUT as usize);
    for _ in 0..NODES {
        let mut ks: Vec<i64> = (0..FANOUT).map(|_| rng.gen_range(0..10_000)).collect();
        ks.sort_unstable();
        keys.extend(ks);
    }

    let mut pb = ProgramBuilder::new();
    let g_keys = pb.global_i64("node_keys", &keys);
    let g_out = pb.global("found", 8 * 4096);
    let kernel = pb.function("btree_kernel", 1, |fb| {
        let tid = fb.arg(0);
        let key = bounded_hash(fb, tid, 10_000);
        let node = fb.var(8);
        fb.store_var(node, 0i64);
        fb.for_range(0i64, DEPTH, 1, |fb, _level| {
            let n = fb.load_var(node);
            let base = fb.alu(AluOp::Mul, n, FANOUT);
            // Linear scan until key < node_keys[base+i] (data-dependent).
            let slot = fb.var(8);
            fb.store_var(slot, 0i64);
            let head = fb.new_block();
            let body = fb.new_block();
            let exit = fb.new_block();
            fb.jmp(head);
            fb.switch_to(head);
            let i = fb.load_var(slot);
            fb.br(Cond::Lt, i, FANOUT - 1, body, exit);
            fb.switch_to(body);
            let idx = fb.alu(AluOp::Add, base, i);
            let m = elem8(fb, g_keys, idx);
            let nk = fb.load(m);
            let stop = fb.new_block();
            let next = fb.new_block();
            fb.br(Cond::Lt, key, Operand::Reg(nk), stop, next);
            fb.switch_to(stop);
            fb.jmp(exit);
            fb.switch_to(next);
            let i2 = fb.alu(AluOp::Add, i, 1i64);
            fb.store_var(slot, i2);
            fb.jmp(head);
            fb.switch_to(exit);
            // child = node*FANOUT + slot + 1
            let s = fb.load_var(slot);
            let scaled = fb.alu(AluOp::Mul, n, FANOUT);
            let child = fb.alu(AluOp::Add, scaled, s);
            let child1 = fb.alu(AluOp::Add, child, 1i64);
            let wrapped = fb.alu(AluOp::Rem, child1, NODES as i64);
            fb.store_var(node, wrapped);
        });
        let leaf = fb.load_var(node);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, leaf);
        fb.ret(None);
    });
    Workload {
        meta: meta("btree", "B+tree lookup with in-node key scans", 4096, 256),
        program: pb.build().expect("btree builds"),
        kernel,
        init: None,
    }
}

/// Particle Filter: uniform weight computation followed by a
/// data-dependent CDF search for the resampling index.
pub fn particlefilter() -> Workload {
    const PARTICLES: usize = 256;
    let mut rng = StdRng::seed_from_u64(0xF117);
    let mut cdf = Vec::with_capacity(PARTICLES);
    let mut acc = 0i64;
    for _ in 0..PARTICLES {
        acc += rng.gen_range(1..20);
        cdf.push(acc);
    }
    let total = acc;

    let mut pb = ProgramBuilder::new();
    let g_cdf = pb.global_i64("cdf", &cdf);
    let g_out = pb.global("resample", 8 * 4096);
    let kernel = pb.function("pf_kernel", 1, |fb| {
        let tid = fb.arg(0);
        // Phase 1: uniform likelihood computation (convergent).
        let w = compute_chain(fb, tid, 40);
        // Phase 2: draw u in [0,total) and search the CDF (divergent).
        let hashed = fb.alu(AluOp::Xor, w, tid);
        let masked = fb.alu(AluOp::And, hashed, i64::MAX);
        let u = fb.alu(AluOp::Rem, masked, total);
        let idx = fb.var(8);
        fb.store_var(idx, 0i64);
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.jmp(head);
        fb.switch_to(head);
        let i = fb.load_var(idx);
        fb.br(Cond::Lt, i, PARTICLES as i64 - 1, body, exit);
        fb.switch_to(body);
        let m = elem8(fb, g_cdf, i);
        let c = fb.load(m);
        let hit = fb.new_block();
        let next = fb.new_block();
        fb.br(Cond::Le, u, Operand::Reg(c), hit, next);
        fb.switch_to(hit);
        fb.jmp(exit);
        fb.switch_to(next);
        let i2 = fb.alu(AluOp::Add, i, 1i64);
        fb.store_var(idx, i2);
        fb.jmp(head);
        fb.switch_to(exit);
        let found = fb.load_var(idx);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, found);
        fb.ret(None);
    });
    Workload {
        meta: meta("particlefilter", "uniform weights + divergent CDF resampling", 4096, 256),
        program: pb.build().expect("particlefilter builds"),
        kernel,
        init: None,
    }
}
