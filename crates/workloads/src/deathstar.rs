//! DeathStarBench social-network microservices: ComposePost, Text,
//! UrlShorten, UniqueID, UserTag, and User — the request-parallel
//! workloads of the paper's Fig. 8–10 studies.

use crate::motifs::{
    bounded_hash, compute_chain, elem8, hash_probe, receive_request, send_response, with_lock,
    xorshift_round,
};
use crate::{Suite, Workload, WorkloadMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threadfuser_ir::{AluOp, Cond, Operand, ProgramBuilder};

fn meta(name: &'static str, description: &'static str, uses_locks: bool) -> WorkloadMeta {
    WorkloadMeta {
        name,
        suite: Suite::DeathStarBench,
        description,
        paper_threads: 2048,
        default_threads: 256,
        has_gpu_impl: false,
        uses_locks,
    }
}

const REQ_FIELDS: i64 = 4;
const SHARDS: i64 = 32;

fn requests(seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..1024 * REQ_FIELDS as usize).map(|_| rng.gen_range(1..1_000_000)).collect()
}

/// ComposePost: parse, generate an id, run text filtering, then publish to
/// the author's shard under its lock.
pub fn post() -> Workload {
    let reqs = requests(0xD501);
    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("requests", &reqs);
    let g_locks = pb.global("shard_locks", 8 * SHARDS as u64);
    let g_store = pb.global("post_store", 8 * 4096);
    let kernel = pb.function("compose_post", 1, |fb| {
        let tid = fb.arg(0);
        let body = receive_request(fb, g_reqs, tid, REQ_FIELDS, 22);
        // Request-type dispatch: an ==-chain over a dense selector that
        // `O3` converts into a jump table (the gcc behaviour behind the
        // paper's Fig. 5 discussion).
        let rtype = bounded_hash(fb, body, 4);
        let kind_bonus = fb.var(8);
        fb.store_var(kind_bonus, 0i64);
        fb.if_then_else(
            Cond::Eq,
            rtype,
            0i64,
            |fb| fb.store_var(kind_bonus, 3i64), // text post
            |fb| {
                fb.if_then_else(
                    Cond::Eq,
                    rtype,
                    1i64,
                    |fb| fb.store_var(kind_bonus, 7i64), // media post
                    |fb| {
                        fb.if_then_else(
                            Cond::Eq,
                            rtype,
                            2i64,
                            |fb| fb.store_var(kind_bonus, 11i64), // repost
                            |fb| fb.store_var(kind_bonus, 13i64), // dm
                        );
                    },
                );
            },
        );
        // Media/text processing: length-dependent (8..=23 words).
        let words = bounded_hash(fb, body, 16);
        let len = fb.alu(AluOp::Add, words, 8i64);
        let digest = fb.var(8);
        fb.store_var(digest, 0i64);
        fb.for_range(0i64, Operand::Reg(len), 1, |fb, w| {
            let mixed = compute_chain(fb, w, 4);
            let d = fb.load_var(digest);
            let s = fb.alu(AluOp::Xor, d, mixed);
            fb.store_var(digest, s);
        });
        // Publish to the author's shard (fine-grain lock).
        let shard = bounded_hash(fb, tid, SHARDS);
        let kb = fb.load_var(kind_bonus);
        let d0 = fb.load_var(digest);
        let d = fb.alu(AluOp::Add, d0, kb);
        with_lock(fb, g_locks, shard, |fb| {
            let slot = fb.alu(AluOp::Rem, d, 4096i64.abs());
            let clamped = fb.alu(AluOp::And, slot, 4095i64);
            let m = elem8(fb, g_store, clamped);
            fb.store(m, d);
        });
        send_response(fb, 14);
        fb.ret(None);
    });
    Workload {
        meta: meta("post", "compose-post: variable text pass + locked publish", true),
        program: pb.build().expect("post builds"),
        kernel,
        init: None,
    }
}

/// Text: tokenize a variable-length message, branching per token on a
/// stop-word check — medium divergence.
pub fn text() -> Workload {
    let reqs = requests(0xD502);
    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("requests", &reqs);
    let g_out = pb.global("tokens_out", 8 * 4096);
    let kernel = pb.function("text_service", 1, |fb| {
        let tid = fb.arg(0);
        let msg = receive_request(fb, g_reqs, tid, REQ_FIELDS, 18);
        let words = bounded_hash(fb, msg, 12);
        let len = fb.alu(AluOp::Add, words, 6i64);
        let kept = fb.var(8);
        fb.store_var(kept, 0i64);
        let state = fb.mov(msg);
        fb.for_range(0i64, Operand::Reg(len), 1, |fb, _w| {
            xorshift_round(fb, state);
            let tok = fb.alu(AluOp::And, state, 0xFFi64);
            // Stop-word filter: ~25% of tokens take the short path.
            fb.if_then_else(
                Cond::Lt,
                tok,
                64i64,
                |fb| {
                    fb.nop(); // dropped token
                },
                |fb| {
                    let k = fb.load_var(kept);
                    let mixed = compute_chain(fb, k, 3);
                    fb.store_var(kept, mixed);
                },
            );
        });
        let k = fb.load_var(kept);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, k);
        send_response(fb, 11);
        fb.ret(None);
    });
    Workload {
        meta: meta("text", "tokenizer with per-token stop-word branches", false),
        program: pb.build().expect("text builds"),
        kernel,
        init: None,
    }
}

/// UrlShorten: shorten 1–3 URLs per request; each goes through hash +
/// shard-locked table insert.
pub fn urlshort() -> Workload {
    let reqs = requests(0xD503);
    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("requests", &reqs);
    let g_locks = pb.global("shard_locks", 8 * SHARDS as u64);
    let g_table = pb.global("short_table", 8 * 2048);
    let kernel = pb.function("url_shorten", 1, |fb| {
        let tid = fb.arg(0);
        let req = receive_request(fb, g_reqs, tid, REQ_FIELDS, 20);
        let n0 = bounded_hash(fb, req, 3);
        let n = fb.alu(AluOp::Add, n0, 1i64);
        fb.for_range(0i64, Operand::Reg(n), 1, |fb, u| {
            let url = fb.alu(AluOp::Add, req, u);
            let short = compute_chain(fb, url, 10);
            let shard = bounded_hash(fb, short, SHARDS);
            with_lock(fb, g_locks, shard, |fb| {
                let slot = fb.alu(AluOp::And, short, 2047i64);
                let m = elem8(fb, g_table, slot);
                fb.store(m, short);
            });
        });
        send_response(fb, 13);
        fb.ret(None);
    });
    Workload {
        meta: meta("urlshort", "1–3 URL hashes + locked table inserts", true),
        program: pb.build().expect("urlshort builds"),
        kernel,
        init: None,
    }
}

/// UniqueID: timestamp/counter id generation — pure convergent hashing,
/// the highest-efficiency microservice.
pub fn uniqueid() -> Workload {
    let reqs = requests(0xD504);
    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("requests", &reqs);
    let g_out = pb.global("ids", 8 * 4096);
    let kernel = pb.function("unique_id", 1, |fb| {
        let tid = fb.arg(0);
        let seed = receive_request(fb, g_reqs, tid, REQ_FIELDS, 14);
        let mixed = fb.alu(AluOp::Xor, seed, tid);
        let id = compute_chain(fb, mixed, 96);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, id);
        send_response(fb, 9);
        fb.ret(None);
    });
    Workload {
        meta: meta("uniqueid", "snowflake-style id generation, convergent", false),
        program: pb.build().expect("uniqueid builds"),
        kernel,
        init: None,
    }
}

/// UserTag: tag 1–8 users per request, each tag updating a per-user shard
/// under its fine-grain lock — the densest locking microservice.
pub fn usertag() -> Workload {
    let reqs = requests(0xD505);
    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("requests", &reqs);
    let g_locks = pb.global("user_locks", 8 * SHARDS as u64);
    let g_counts = pb.global("tag_counts", 8 * SHARDS as u64);
    let kernel = pb.function("user_tag", 1, |fb| {
        let tid = fb.arg(0);
        let req = receive_request(fb, g_reqs, tid, REQ_FIELDS, 18);
        let t0 = bounded_hash(fb, req, 8);
        let tags = fb.alu(AluOp::Add, t0, 1i64);
        fb.for_range(0i64, Operand::Reg(tags), 1, |fb, t| {
            let user = fb.alu(AluOp::Add, req, t);
            let shard = bounded_hash(fb, user, SHARDS);
            with_lock(fb, g_locks, shard, |fb| {
                let m = elem8(fb, g_counts, shard);
                let c = fb.load(m);
                let c2 = fb.alu(AluOp::Add, c, 1i64);
                let m2 = elem8(fb, g_counts, shard);
                fb.store(m2, c2);
            });
        });
        send_response(fb, 11);
        fb.ret(None);
    });
    Workload {
        meta: meta("usertag", "1–8 per-user tags under fine-grain locks", true),
        program: pb.build().expect("usertag builds"),
        kernel,
        init: None,
    }
}

/// User: login — fixed-round credential hash chain plus a session-table
/// probe; convergent except for probe-length variance.
pub fn user() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xD506);
    let reqs = requests(0xD506);
    let sessions: Vec<i64> = (0..1024)
        .map(|_| if rng.gen_bool(0.5) { rng.gen_range(1..1_000_000) } else { 0 })
        .collect();
    let mut pb = ProgramBuilder::new();
    let g_reqs = pb.global_i64("requests", &reqs);
    let g_sessions = pb.global_i64("sessions", &sessions);
    let g_out = pb.global("auth_out", 8 * 4096);
    let kernel = pb.function("user_login", 1, |fb| {
        let tid = fb.arg(0);
        let cred = receive_request(fb, g_reqs, tid, REQ_FIELDS, 16);
        // Fixed 32-round password hash (convergent).
        let h = compute_chain(fb, cred, 32);
        let session = hash_probe(fb, g_sessions, h, 1024, 6);
        let token = fb.alu(AluOp::Xor, session, h);
        let mo = elem8(fb, g_out, tid);
        fb.store(mo, token);
        send_response(fb, 11);
        fb.ret(None);
    });
    Workload {
        meta: meta("user", "login: fixed hash chain + session probe", false),
        program: pb.build().expect("user builds"),
        kernel,
        init: None,
    }
}
