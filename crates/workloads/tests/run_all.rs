//! End-to-end smoke + banding tests: every Table I workload must execute
//! on the MIMD machine, trace cleanly, and analyze to a SIMT efficiency in
//! the band the paper reports for its class.

use threadfuser_analyzer::AnalyzerConfig;
use threadfuser_machine::MachineConfig;
use threadfuser_tracer::trace_program;
use threadfuser_workloads::{all, by_name, Workload};

fn run(w: &Workload, threads: u32, warp: u32) -> threadfuser_analyzer::AnalysisReport {
    let mut cfg = MachineConfig::new(w.kernel, threads);
    cfg.init = w.init;
    let (traces, _) = trace_program(&w.program, cfg)
        .unwrap_or_else(|e| panic!("{} failed to execute: {e}", w.meta.name));
    AnalyzerConfig::new(warp)
        .analyze(&w.program, &traces)
        .unwrap_or_else(|e| panic!("{} failed to analyze: {e}", w.meta.name))
}

#[test]
fn every_workload_runs_and_analyzes() {
    for w in all() {
        let threads = w.meta.default_threads.min(128);
        let report = run(&w, threads, 32);
        let eff = report.simt_efficiency();
        assert!(eff > 0.0 && eff <= 1.0 + 1e-9, "{}: efficiency {eff} out of range", w.meta.name);
        assert!(report.issues > 0, "{}: no issues recorded", w.meta.name);
        assert!(
            report.thread_insts > 100,
            "{}: suspiciously small ({} thread insts)",
            w.meta.name,
            report.thread_insts
        );
    }
}

#[test]
fn efficiency_bands_match_paper_classes() {
    let expect: &[(&str, f64, f64)] = &[
        // (name, min, max) at warp 32
        ("vectoradd", 0.99, 1.01),
        ("uncoalesced", 0.99, 1.01),
        ("nbody", 0.90, 1.01),
        ("md5", 0.90, 1.01),
        ("swaptions", 0.90, 1.01),
        ("blackscholes", 0.85, 1.01),
        ("nn", 0.90, 1.01),
        ("textsearch_leaf", 0.70, 1.01),
        ("textsearch_mid", 0.70, 1.01),
        ("uniqueid", 0.60, 1.01),
        ("pigz", 0.02, 0.35),
        ("hdsearch_mid", 0.01, 0.30),
        ("freqmine", 0.05, 0.60),
        ("bfs", 0.05, 0.70),
    ];
    for (name, lo, hi) in expect {
        let w = by_name(name).unwrap();
        let report = run(&w, w.meta.default_threads.min(128), 32);
        let eff = report.simt_efficiency();
        assert!(
            eff >= *lo && eff <= *hi,
            "{name}: efficiency {eff:.3} outside paper band [{lo}, {hi}]"
        );
    }
}

#[test]
fn hdsearch_fix_recovers_efficiency() {
    // Paper Fig. 7: 6% → 90% after capping getpoint at top-10.
    let broken = by_name("hdsearch_mid").unwrap();
    let fixed = by_name("hdsearch_mid_fixed").unwrap();
    let eb = run(&broken, 128, 32).simt_efficiency();
    let ef = run(&fixed, 128, 32).simt_efficiency();
    assert!(eb < 0.3, "broken variant should be inefficient, got {eb:.3}");
    assert!(ef > 0.75, "fixed variant should recover, got {ef:.3}");
    assert!(ef > eb * 3.0, "fix must be dramatic: {eb:.3} -> {ef:.3}");
}

#[test]
fn getpoint_dominates_hdsearch_instructions() {
    // Paper Fig. 7a: ~half the instructions come from getpoint, and its
    // per-function efficiency is the bottleneck.
    let w = by_name("hdsearch_mid").unwrap();
    let report = run(&w, 128, 32);
    let shares = report.functions_by_share();
    let (top, share) = &shares[0];
    assert_eq!(top.name, "getpoint", "hottest function");
    assert!(*share > 0.35, "getpoint share {share:.2}");
    assert!(
        top.efficiency(32) < 0.3,
        "getpoint must be the efficiency bottleneck, got {:.3}",
        top.efficiency(32)
    );
}

#[test]
fn warp_size_sensitivity_matches_fig1() {
    // Low-efficiency workloads gain at warp 8; high-efficiency ones don't
    // move (paper: nbody/md5 vary < 5%, pigz 10% → 18%).
    for name in ["pigz", "bfs"] {
        let w = by_name(name).unwrap();
        let e8 = run(&w, 128, 8).simt_efficiency();
        let e32 = run(&w, 128, 32).simt_efficiency();
        assert!(
            e8 > e32 * 1.2,
            "{name}: expected strong warp-size sensitivity, got {e8:.3} vs {e32:.3}"
        );
    }
    for name in ["nbody", "md5"] {
        let w = by_name(name).unwrap();
        let e8 = run(&w, 128, 8).simt_efficiency();
        let e32 = run(&w, 128, 32).simt_efficiency();
        assert!(
            (e8 - e32).abs() < 0.05,
            "{name}: expected warp-size insensitivity, got {e8:.3} vs {e32:.3}"
        );
    }
}

#[test]
fn microservices_trace_about_ninety_percent() {
    // Paper Fig. 8: GEOMEAN ≈90% of instructions traced.
    let mut fractions = Vec::new();
    for w in threadfuser_workloads::microservices() {
        let mut cfg = MachineConfig::new(w.kernel, 64);
        cfg.init = w.init;
        let (traces, _) = trace_program(&w.program, cfg).unwrap();
        fractions.push(traces.traced_fraction());
    }
    let geomean = threadfuser_analyzer::stats::geomean(&fractions);
    assert!(
        geomean > 0.75 && geomean < 0.995,
        "traced-fraction geomean {geomean:.3} outside the plausible Fig. 8 band"
    );
}

#[test]
fn uses_locks_flag_matches_trace_contents() {
    use threadfuser_tracer::TraceEvent;
    for w in all() {
        let mut cfg = MachineConfig::new(w.kernel, 64);
        cfg.init = w.init;
        let (traces, _) = trace_program(&w.program, cfg).unwrap();
        let has_lock_events = traces
            .threads()
            .iter()
            .any(|t| t.iter_events().any(|e| matches!(e, TraceEvent::Acquire { .. })));
        assert_eq!(
            has_lock_events, w.meta.uses_locks,
            "{}: uses_locks metadata out of sync with behaviour",
            w.meta.name
        );
    }
}

#[test]
fn coalescing_contrast_between_micro_kernels() {
    let c = run(&by_name("vectoradd").unwrap(), 128, 32);
    let u = run(&by_name("uncoalesced").unwrap(), 128, 32);
    assert!(
        u.heap.transactions_per_inst() > c.heap.transactions_per_inst() * 2.0,
        "uncoalesced {:.2} vs coalesced {:.2} transactions/inst",
        u.heap.transactions_per_inst(),
        c.heap.transactions_per_inst()
    );
}
