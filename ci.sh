#!/usr/bin/env bash
# Local CI gate: everything a PR must pass.
#   ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release

echo "==> tests"
cargo test -q

echo "==> clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> rustfmt"
cargo fmt --check

echo "==> perf_pipeline smoke"
TF_BENCH_OUT="${TMPDIR:-/tmp}/BENCH_pipeline.json" \
    cargo run --release -p threadfuser-bench --bin perf_pipeline

echo "==> perf_sweep smoke (shared index vs cold re-analysis)"
SWEEP_OUT="${TMPDIR:-/tmp}/BENCH_sweep.json"
TF_BENCH_OUT="$SWEEP_OUT" \
    cargo run --release -p threadfuser-bench --bin perf_sweep
# Fails when the report is malformed or the warm-index sweep was not
# faster than the cold one.
cargo run --release -q -p threadfuser-bench --bin perf_sweep -- --check "$SWEEP_OUT"

echo "==> ci.sh: all green"
