#!/usr/bin/env bash
# Local CI gate: everything a PR must pass.
#   ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release

echo "==> tests"
cargo test -q

echo "==> clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> rustfmt"
cargo fmt --check

echo "==> rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> paper tables (Table I + Fig. 1 incl. the coop family)"
# Thread-capped smoke of the two catalog-wide paper artifacts: Table I
# must enumerate all 41 workloads (36 paper + 5 coop) and Fig. 1 must
# hold its efficiency-monotonicity assertion on every one of them.
TABLE1_OUT=$(TF_THREADS=64 cargo run --release -q -p threadfuser-bench --bin table1_workloads)
echo "$TABLE1_OUT" | grep -q "coop_lottery"
FIG01_OUT=$(TF_THREADS=64 cargo run --release -q -p threadfuser-bench --bin fig01_efficiency)
echo "$FIG01_OUT" | grep -q "coop_rr"

echo "==> trace CLI usage gate (--chunk-kb 0 must be a usage error)"
set +e
cargo run --release -q -p threadfuser --bin threadfuser -- \
    trace vectoradd --threads 8 --out "${TMPDIR:-/tmp}/tf_zero_chunk.bin" --chunk-kb 0 \
    >/dev/null 2>&1
ZERO_CHUNK_EXIT=$?
set -e
[ "$ZERO_CHUNK_EXIT" -eq 2 ]
[ ! -f "${TMPDIR:-/tmp}/tf_zero_chunk.bin" ]

echo "==> fuzz_trace (corpus + random-bytes never-panic gate)"
# Fails when any corpus expectation is violated (valid files must decode
# and round-trip, invalid ones must return Err under strict validation),
# when any input panics the decoder, or when a workload capture fails
# decode(encode(t)) == t.
cargo run --release -q -p threadfuser-bench --bin fuzz_trace -- --check

echo "==> perf_pipeline smoke + perf gates"
TF_BENCH_OUT="${TMPDIR:-/tmp}/BENCH_pipeline.json" \
    cargo run --release -p threadfuser-bench --bin perf_pipeline
# Fails when any model x formation report hash diverges from the committed
# pre-refactor baseline (bit-identity across the whole grid, melds and
# issue_slots included), or when a phase misses its aggregate insts/sec
# gate vs the baseline: warp-emulate >= 2.0x, coalesce >= 1.5x.
cargo run --release -q -p threadfuser-bench --bin perf_pipeline -- \
    --check "${TMPDIR:-/tmp}/BENCH_pipeline.json" \
    --baseline results/BENCH_pipeline_baseline.json

echo "==> perf_sweep smoke (shared index vs cold re-analysis)"
SWEEP_OUT="${TMPDIR:-/tmp}/BENCH_sweep.json"
TF_BENCH_OUT="$SWEEP_OUT" \
    cargo run --release -p threadfuser-bench --bin perf_sweep
# Fails when the report is malformed or the warm-index sweep was not
# faster than the cold one.
cargo run --release -q -p threadfuser-bench --bin perf_sweep -- --check "$SWEEP_OUT"

echo "==> perf_trace smoke (predecoded engine vs legacy, columnar vs materialized replay, v2 vs v3 format)"
TRACE_OUT="${TMPDIR:-/tmp}/BENCH_trace.json"
TF_BENCH_OUT="$TRACE_OUT" \
    cargo run --release -p threadfuser-bench --bin perf_trace
# Fails when the report is malformed, the predecoded engine traced below
# the speedup gate, the engines / replay modes / decode paths disagreed
# bit for bit, any v3 encoding exceeded 0.6x of its v2 size, or the
# aggregate v3 eager-decode speedup over v2 fell below 1.3x.
cargo run --release -q -p threadfuser-bench --bin perf_trace -- --check "$TRACE_OUT"

echo "==> perf_sim smoke (parallel projection backend vs sequential)"
SIM_OUT="${TMPDIR:-/tmp}/BENCH_sim.json"
TF_BENCH_OUT="$SIM_OUT" \
    cargo run --release -p threadfuser-bench --bin perf_sim
# Fails when the report is malformed, any parallel stage (tracegen,
# simt-sim, cpu-sim) diverged from its sequential twin, or — on hosts
# with >= 4 CPUs — the combined backend speedup fell below the gate.
cargo run --release -q -p threadfuser-bench --bin perf_sim -- --check "$SIM_OUT"

echo "==> serve smoke (job server end-to-end over TCP)"
SMOKE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/tf_serve_smoke.XXXXXX")
trap 'rm -rf "$SMOKE_DIR"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
# A valid capture (v3 chunked format, the `trace` default) plus a
# truncated (invalid) copy for the decode-error job. Truncating to half
# the file guarantees the v3 footer is gone whatever the file size.
cargo run --release -q -p threadfuser --bin threadfuser -- \
    trace vectoradd --threads 8 --out "$SMOKE_DIR/trace.bin" >/dev/null
head -c "$(( $(wc -c < "$SMOKE_DIR/trace.bin") / 2 ))" \
    "$SMOKE_DIR/trace.bin" > "$SMOKE_DIR/corrupt.bin"
cargo build --release -q -p threadfuser-serve
SERVE_PORT=$((17000 + RANDOM % 2000))
./target/release/threadfuser-serve --listen "127.0.0.1:$SERVE_PORT" --workers 2 \
    > "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 50); do
    grep -q "listening on" "$SMOKE_DIR/serve.log" && break
    sleep 0.1
done
grep -q "listening on" "$SMOKE_DIR/serve.log"
# Six jobs down one connection: analyze, an analyze of a cooperative-
# scheduler workload (the coop family must be servable by name), a
# legacy-shaped sweep (no model/formation fields — the wire back-compat
# proof), a model×formation grid sweep, a strict validate of the corrupt
# file, and a graceful shutdown.
CAPTURE='{"source":{"Workload":"vectoradd"},"threads":32,"opt":"O3","policy":"Strict","check_shape":false}'
COOP_CAPTURE='{"source":{"Workload":"coop_channel"},"threads":32,"opt":"O3","policy":"Strict","check_shape":false}'
KNOBS='{"warp_size":32,"batching":"Linear","intra_warp_locks":false,"reconvergence":"DynamicIpdom","parallelism":0}'
exec 3<>"/dev/tcp/127.0.0.1/$SERVE_PORT"
printf '%s\n' \
  "{\"id\":1,\"tenant\":null,\"stream_obs\":false,\"op\":{\"Analyze\":{\"capture\":$CAPTURE,\"config\":$KNOBS}}}" \
  "{\"id\":6,\"tenant\":null,\"stream_obs\":false,\"op\":{\"Analyze\":{\"capture\":$COOP_CAPTURE,\"config\":$KNOBS}}}" \
  "{\"id\":2,\"tenant\":null,\"stream_obs\":false,\"op\":{\"Sweep\":{\"capture\":$CAPTURE,\"config\":$KNOBS,\"warps\":[8,32],\"batchings\":[\"Linear\"]}}}" \
  "{\"id\":5,\"tenant\":null,\"stream_obs\":false,\"op\":{\"Sweep\":{\"capture\":$CAPTURE,\"config\":$KNOBS,\"warps\":[32],\"batchings\":[\"Linear\"],\"models\":[\"IpdomStack\",\"StacklessPcMin\",\"BranchMelding\"],\"formations\":[\"Fixed\",{\"DynamicResize\":{\"min_width\":8}}]}}}" \
  "{\"id\":3,\"tenant\":null,\"stream_obs\":false,\"op\":{\"Validate\":{\"capture\":{\"source\":{\"TraceFile\":{\"path\":\"$SMOKE_DIR/corrupt.bin\",\"workload\":\"vectoradd\"}},\"threads\":null,\"opt\":\"O3\",\"policy\":\"Strict\",\"check_shape\":true}}}}" \
  "{\"id\":4,\"tenant\":null,\"stream_obs\":false,\"op\":\"Shutdown\"}" >&3
SMOKE_RESP=$(timeout 60 head -n 6 <&3)
exec 3<&- 3>&-
echo "$SMOKE_RESP" | grep -q '"Analysis"'   # analyze answered with a report
# The coop job must come back as its own successful analysis (id 6).
echo "$SMOKE_RESP" | grep '"id":6' | grep -q '"Analysis"'
echo "$SMOKE_RESP" | grep -q '"Sweep"'      # sweep answered with rows
echo "$SMOKE_RESP" | grep -q 'StacklessPcMin'   # model grid swept the stackless machine
echo "$SMOKE_RESP" | grep -q 'DynamicResize'    # ... and the resizing formation
echo "$SMOKE_RESP" | grep -q '"Decode"'     # corrupt file → structured decode error
echo "$SMOKE_RESP" | grep -q '"Done"'       # shutdown acknowledged
# Clean exit: the daemon must terminate on its own after Shutdown.
SERVE_EXIT=0
for _ in $(seq 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || { SERVE_EXIT=done; break; }
    sleep 0.1
done
[ "$SERVE_EXIT" = done ]
wait "$SERVE_PID"
SERVE_PID=""

echo "==> perf_serve smoke (warm capture cache vs cold, backpressure)"
SERVE_OUT="${TMPDIR:-/tmp}/BENCH_serve.json"
TF_BENCH_OUT="$SERVE_OUT" \
    cargo run --release -p threadfuser-bench --bin perf_serve
# Fails when the report is malformed, the warm batch missed the 1.5x
# cache gate, any served report diverged from its direct Pipeline twin,
# or the full-queue probe saw no structured Overloaded rejection.
cargo run --release -q -p threadfuser-bench --bin perf_serve -- --check "$SERVE_OUT"

echo "==> ci.sh: all green"
