#!/usr/bin/env bash
# Local CI gate: everything a PR must pass.
#   ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release

echo "==> tests"
cargo test -q

echo "==> clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> rustfmt"
cargo fmt --check

echo "==> perf_pipeline smoke"
TF_BENCH_OUT="${TMPDIR:-/tmp}/BENCH_pipeline.json" \
    cargo run --release -p threadfuser-bench --bin perf_pipeline

echo "==> ci.sh: all green"
