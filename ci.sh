#!/usr/bin/env bash
# Local CI gate: everything a PR must pass.
#   ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> build (release)"
cargo build --release

echo "==> tests"
cargo test -q

echo "==> clippy (deny warnings)"
cargo clippy --all-targets -- -D warnings

echo "==> rustfmt"
cargo fmt --check

echo "==> rustdoc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> fuzz_trace (corpus + random-bytes never-panic gate)"
# Fails when any corpus expectation is violated (valid files must decode
# and round-trip, invalid ones must return Err under strict validation),
# when any input panics the decoder, or when a workload capture fails
# decode(encode(t)) == t.
cargo run --release -q -p threadfuser-bench --bin fuzz_trace -- --check

echo "==> perf_pipeline smoke"
TF_BENCH_OUT="${TMPDIR:-/tmp}/BENCH_pipeline.json" \
    cargo run --release -p threadfuser-bench --bin perf_pipeline

echo "==> perf_sweep smoke (shared index vs cold re-analysis)"
SWEEP_OUT="${TMPDIR:-/tmp}/BENCH_sweep.json"
TF_BENCH_OUT="$SWEEP_OUT" \
    cargo run --release -p threadfuser-bench --bin perf_sweep
# Fails when the report is malformed or the warm-index sweep was not
# faster than the cold one.
cargo run --release -q -p threadfuser-bench --bin perf_sweep -- --check "$SWEEP_OUT"

echo "==> perf_trace smoke (predecoded engine vs legacy, columnar vs materialized replay)"
TRACE_OUT="${TMPDIR:-/tmp}/BENCH_trace.json"
TF_BENCH_OUT="$TRACE_OUT" \
    cargo run --release -p threadfuser-bench --bin perf_trace
# Fails when the report is malformed, the predecoded engine traced below
# the speedup gate, or the engines / replay modes disagreed bit for bit.
cargo run --release -q -p threadfuser-bench --bin perf_trace -- --check "$TRACE_OUT"

echo "==> perf_sim smoke (parallel projection backend vs sequential)"
SIM_OUT="${TMPDIR:-/tmp}/BENCH_sim.json"
TF_BENCH_OUT="$SIM_OUT" \
    cargo run --release -p threadfuser-bench --bin perf_sim
# Fails when the report is malformed, any parallel stage (tracegen,
# simt-sim, cpu-sim) diverged from its sequential twin, or — on hosts
# with >= 4 CPUs — the combined backend speedup fell below the gate.
cargo run --release -q -p threadfuser-bench --bin perf_sim -- --check "$SIM_OUT"

echo "==> ci.sh: all green"
